"""Seeded scenario fuzzer / stress harness.

:func:`generate_stress_scenario` derives a random-but-reproducible
(:class:`~repro.workloads.scenarios.ScenarioConfig`,
:class:`~repro.scenarios.program.ScenarioProgram`) pair from a master seed
and a scenario index via SeedSequence spawn keys, so every scenario is an
independent stream and the whole sweep replays bit-for-bit from one seed.

:func:`run_stress` sweeps those scenarios against every registry dispatcher
(plus sharded and cluster serving), flagging

* **crashes** — any exception out of compile/run;
* **non-determinism** — rerunning the same (scenario, dispatcher) pair must
  reproduce the exact metrics fingerprint (float bits included);
* **invariant violations** — negative waits, dropoff before pickup,
  deadline breaches (disruption-free programs only; closures may
  legitimately slip committed arrivals past deadlines), and per-worker
  capacity overflows reconstructed from the completion records;
* **served-rate cliffs** — a dispatcher serving dramatically less than the
  best dispatcher on the same scenario (reported, not failed: some
  algorithms are legitimately weak on adversarial programs).

Cluster combinations run the full program, disruptions included — the
front door broadcasts live closures/reopenings to its shard worker
processes via the replica-sync update protocol, so nothing is stripped and
the determinism rerun covers the cluster mutation path too.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.dispatch.registry import DispatcherSpec, list_dispatchers
from repro.scenarios.program import (
    DemandSurge,
    FleetClass,
    NetworkDisruption,
    ScenarioProgram,
    WorkloadClass,
)
from repro.scenarios.runner import ScenarioRunResult, run_program
from repro.service.spec import PlatformSpec
from repro.utils.rng import derive_spawned_seed, make_rng
from repro.workloads.scenarios import ScenarioConfig

_TOLERANCE = 1e-6

_STRESS_CITIES = ("small-grid", "random", "chengdu-like")
_STRESS_CITY_WEIGHTS = (0.45, 0.45, 0.10)


def default_stress_dispatchers() -> list[str]:
    """Every registry dispatcher, plus one sharded and one cluster variant.

    The plain names cover every in-process algorithm; the ``sharded:`` and
    ``cluster:`` entries exercise the partitioned and process-isolated
    serving paths on the reference algorithm.
    """
    return list_dispatchers() + ["sharded:pruneGreedyDP", "cluster:pruneGreedyDP"]


def generate_stress_scenario(
    master_seed: int, index: int, *, allow_disruptions: bool = True
) -> tuple[ScenarioConfig, ScenarioProgram]:
    """Derive stress scenario ``index`` of the sweep keyed by ``master_seed``.

    Scenarios are deliberately small (6–14 workers, 30–80 requests, compact
    cities) so a whole sweep finishes in CI; the *structure* — fleet mixes,
    workload mixes, surges, disruptions, cancellations — is where the fuzzing
    happens. The same ``(master_seed, index)`` always yields the same pair.
    """
    seed = derive_spawned_seed(master_seed, "stress", index)
    rng = make_rng(seed)

    city = _STRESS_CITIES[int(rng.choice(len(_STRESS_CITIES), p=_STRESS_CITY_WEIGHTS))]
    num_workers = int(rng.integers(6, 15))
    num_requests = int(rng.integers(30, 81))
    horizon_hours = float(rng.uniform(1.0, 2.0))
    cancellation_rate = float(rng.uniform(0.05, 0.2)) if rng.random() < 0.3 else 0.0
    config = ScenarioConfig(
        city=city,
        num_workers=num_workers,
        num_requests=num_requests,
        worker_capacity=int(rng.integers(2, 7)),
        deadline_minutes=float(rng.uniform(8.0, 15.0)),
        horizon_hours=horizon_hours,
        cancellation_rate=cancellation_rate,
        seed=seed,
    )

    fleet: tuple[FleetClass, ...] = ()
    if rng.random() < 0.4:
        class_count = int(rng.integers(2, 4))
        classes = []
        for class_index in range(class_count):
            classes.append(
                FleetClass(
                    name=f"class-{class_index}",
                    count=int(rng.integers(2, 7)),
                    capacity=int(rng.integers(1, 7)),
                    shift_hours=(
                        float(rng.uniform(0.5, horizon_hours)) if rng.random() < 0.3 else 0.0
                    ),
                    hotspot_share=float(rng.uniform(0.2, 0.8)),
                )
            )
        fleet = tuple(classes)

    workload: tuple[WorkloadClass, ...] = ()
    if rng.random() < 0.4:
        class_count = int(rng.integers(2, 4))
        classes = []
        for class_index in range(class_count):
            classes.append(
                WorkloadClass(
                    name=f"load-{class_index}",
                    count=int(rng.integers(10, 31)),
                    deadline_minutes=(
                        float(rng.uniform(6.0, 25.0)) if rng.random() < 0.5 else None
                    ),
                    penalty_factor=(
                        float(rng.uniform(4.0, 16.0)) if rng.random() < 0.5 else None
                    ),
                    capacity=int(rng.integers(1, 3)) if rng.random() < 0.5 else None,
                )
            )
        workload = tuple(classes)

    surges: tuple[DemandSurge, ...] = ()
    if rng.random() < 0.5:
        surge_count = int(rng.integers(1, 3))
        surges = tuple(
            DemandSurge(
                name=f"surge-{surge_index}",
                start_hours=float(rng.uniform(0.2, 0.7) * horizon_hours),
                duration_minutes=float(rng.uniform(10.0, 20.0)),
                count=int(rng.integers(8, 21)),
                deadline_minutes=float(rng.uniform(8.0, 15.0)) if rng.random() < 0.5 else None,
                capacity=int(rng.integers(1, 3)) if rng.random() < 0.3 else None,
                spread_fraction=float(rng.uniform(0.02, 0.08)),
            )
            for surge_index in range(surge_count)
        )

    disruptions: tuple[NetworkDisruption, ...] = ()
    if allow_disruptions and rng.random() < 0.5:
        disruption_count = int(rng.integers(1, 3))
        disruptions = tuple(
            NetworkDisruption(
                name=f"closure-{disruption_index}",
                start_hours=float(rng.uniform(0.2, 0.6) * horizon_hours),
                duration_minutes=(
                    float(rng.uniform(20.0, 40.0)) if rng.random() < 0.6 else None
                ),
                edge_count=int(rng.integers(1, 3)),
            )
            for disruption_index in range(disruption_count)
        )

    program = ScenarioProgram(
        name=f"stress-{index}",
        description=f"fuzzed scenario {index} of master seed {master_seed}",
        fleet=fleet,
        workload=workload,
        surges=surges,
        disruptions=disruptions,
    ).validate()
    return config, program


@dataclass
class StressReport:
    """Outcome of one :func:`run_stress` sweep.

    Attributes:
        master_seed: sweep seed.
        num_scenarios: scenarios generated.
        dispatchers: dispatcher names swept.
        runs: one record per (scenario, dispatcher) combination.
        crashes: combinations that raised (with tracebacks).
        nondeterministic: combinations whose rerun fingerprints diverged.
        violations: invariant violations (capacity/deadline/negative waits).
        cliffs: served-rate cliffs (informational, not failures).
    """

    master_seed: int
    num_scenarios: int
    dispatchers: list[str]
    runs: list[dict] = field(default_factory=list)
    crashes: list[dict] = field(default_factory=list)
    nondeterministic: list[dict] = field(default_factory=list)
    violations: list[dict] = field(default_factory=list)
    cliffs: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No crashes, no non-determinism, no invariant violations."""
        return not (self.crashes or self.nondeterministic or self.violations)

    def to_dict(self) -> dict:
        """JSON-ready representation (``BENCH_stress.json`` payload)."""
        return {
            "master_seed": self.master_seed,
            "num_scenarios": self.num_scenarios,
            "dispatchers": list(self.dispatchers),
            "total_runs": len(self.runs),
            "ok": self.ok,
            "crashes": self.crashes,
            "nondeterministic": self.nondeterministic,
            "violations": self.violations,
            "cliffs": self.cliffs,
            "runs": self.runs,
        }


def run_stress(
    num_scenarios: int = 30,
    dispatchers: list[str] | None = None,
    *,
    master_seed: int = 2018,
    reruns: int = 1,
    cliff_threshold: float = 0.5,
    num_shards: int = 2,
    progress: Callable[[str], None] | None = None,
) -> StressReport:
    """Sweep seeded random scenarios against the dispatcher registry.

    Args:
        num_scenarios: scenarios to generate (indices ``0..n-1``).
        dispatchers: dispatcher names (default
            :func:`default_stress_dispatchers`).
        master_seed: sweep seed; the whole report is a pure function of it.
        reruns: extra reruns per combination for the determinism check
            (0 disables).
        cliff_threshold: flag a dispatcher whose served rate falls this far
            below the scenario's best.
        num_shards: shard count for ``sharded:``/``cluster:`` entries.
        progress: optional line sink for live progress output.
    """
    dispatchers = list(default_stress_dispatchers() if dispatchers is None else dispatchers)
    report = StressReport(
        master_seed=master_seed, num_scenarios=num_scenarios, dispatchers=dispatchers
    )
    for index in range(num_scenarios):
        config, program = generate_stress_scenario(master_seed, index)
        scenario_rates: dict[str, float] = {}
        for dispatcher_name in dispatchers:
            spec = _stress_spec(config, dispatcher_name, num_shards)
            # cluster combinations run disruptions like everyone else since
            # the replica-sync protocol gained NetworkUpdateCommand; the key
            # stays in the combo schema so trajectory diffs show the change
            effective = program
            combo = {
                "scenario": index,
                "seed": config.seed,
                "city": config.city,
                "workers": config.num_workers,
                "requests": config.num_requests,
                "program": program.name,
                "disruptions_stripped": len(effective.disruptions) != len(program.disruptions),
                "dispatcher": dispatcher_name,
            }
            if progress is not None:
                progress(f"[{index + 1}/{num_scenarios}] {program.name} x {dispatcher_name}")
            try:
                outcome = run_program(spec, effective)
                fingerprints = [_fingerprint(outcome)]
                for _ in range(reruns):
                    fingerprints.append(_fingerprint(run_program(spec, effective)))
            except Exception as exc:  # noqa: BLE001 - the harness reports, never dies
                report.crashes.append(
                    {**combo, "error": repr(exc), "traceback": traceback.format_exc()}
                )
                report.runs.append({**combo, "crashed": True})
                continue
            if any(fingerprint != fingerprints[0] for fingerprint in fingerprints[1:]):
                report.nondeterministic.append({**combo, "fingerprints": fingerprints})
            violations = _check_invariants(outcome, allow_deadline_slip=bool(effective.disruptions))
            for violation in violations:
                report.violations.append({**combo, **violation})
            result = outcome.result
            scenario_rates[dispatcher_name] = result.served_rate
            report.runs.append(
                {
                    **combo,
                    "crashed": False,
                    "served_rate": result.served_rate,
                    "served": result.served_requests,
                    "rejected": result.rejected_requests,
                    "cancelled": result.cancelled_requests,
                    "unified_cost": result.unified_cost,
                    "deadline_violations": result.deadline_violations,
                    "violations": len(violations),
                }
            )
        if scenario_rates:
            best = max(scenario_rates.values())
            for dispatcher_name, rate in sorted(scenario_rates.items()):
                if rate < best - cliff_threshold:
                    report.cliffs.append(
                        {
                            "scenario": index,
                            "dispatcher": dispatcher_name,
                            "served_rate": rate,
                            "best_rate": best,
                        }
                    )
    return report


def _stress_spec(config: ScenarioConfig, dispatcher_name: str, num_shards: int) -> PlatformSpec:
    """Platform spec for one sweep combination (small shard counts)."""
    dispatcher = DispatcherSpec.parse(dispatcher_name)
    if (dispatcher.sharded or dispatcher.cluster) and dispatcher.num_shards <= 1:
        dispatcher = replace(dispatcher, num_shards=num_shards)
    return PlatformSpec(scenario=config, dispatcher=dispatcher)


def _fingerprint(outcome: ScenarioRunResult) -> tuple:
    """Exact (bit-level) metrics fingerprint for the determinism check."""
    result = outcome.result
    return (
        result.total_requests,
        result.served_requests,
        result.rejected_requests,
        result.cancelled_requests,
        float(result.unified_cost).hex(),
        float(result.total_travel_cost).hex(),
        float(result.mean_wait_seconds).hex(),
        float(result.mean_detour_ratio).hex(),
        result.distance_queries,
    )


def _check_invariants(outcome: ScenarioRunResult, *, allow_deadline_slip: bool) -> list[dict]:
    """Physical-consistency checks over the run's completion records.

    Deadline breaches are only violations for disruption-free programs: a
    street closure after commitment may legitimately slip an arrival past
    its deadline (the run then counts it in ``deadline_violations``).
    """
    violations: list[dict] = []
    capacities = {worker.id: worker.capacity for worker in outcome.compiled.instance.workers}
    per_worker_events: dict[int, list[tuple[float, int]]] = {}
    for record in outcome.completions:
        request = record.request
        if record.pickup_time is not None and record.pickup_time < request.release_time - _TOLERANCE:
            violations.append(
                {
                    "kind": "negative_wait",
                    "request": request.id,
                    "pickup_time": record.pickup_time,
                    "release_time": request.release_time,
                }
            )
        if not record.completed:
            continue
        if record.dropoff_time < record.pickup_time - _TOLERANCE:
            violations.append(
                {
                    "kind": "dropoff_before_pickup",
                    "request": request.id,
                    "pickup_time": record.pickup_time,
                    "dropoff_time": record.dropoff_time,
                }
            )
        if not allow_deadline_slip and record.dropoff_time > request.deadline + _TOLERANCE:
            violations.append(
                {
                    "kind": "deadline_breach",
                    "request": request.id,
                    "dropoff_time": record.dropoff_time,
                    "deadline": request.deadline,
                }
            )
        per_worker_events.setdefault(record.worker_id, []).append(
            (record.pickup_time, request.capacity)
        )
        per_worker_events[record.worker_id].append((record.dropoff_time, -request.capacity))
    for worker_id, events in sorted(per_worker_events.items()):
        load = 0
        peak = 0
        # dropoffs sort before pickups at the same instant (delta -k < +k)
        for _time, delta in sorted(events, key=lambda event: (event[0], event[1])):
            load += delta
            peak = max(peak, load)
        capacity = capacities.get(worker_id)
        if capacity is not None and peak > capacity:
            violations.append(
                {
                    "kind": "capacity_overflow",
                    "worker": worker_id,
                    "peak_load": peak,
                    "capacity": capacity,
                }
            )
    return violations


__all__ = [
    "StressReport",
    "default_stress_dispatchers",
    "generate_stress_scenario",
    "run_stress",
]
