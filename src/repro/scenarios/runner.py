"""Drive a compiled scenario through the serving code path.

:func:`run_program` compiles a :class:`~repro.scenarios.program.ScenarioProgram`
against a :class:`~repro.service.spec.PlatformSpec` and replays it through the
:class:`~repro.service.facade.MatchingService` incremental protocol — the same
submit/advance/drain session API online serving uses — interleaving the
compiled network-action timeline with the request stream. Scheduled closures
land between submissions via :meth:`MatchingService.apply_network_update`, so
oracle/grid re-derivation follows automatically.

The empty program degenerates to ``MatchingService.replay()`` semantics and is
bit-for-bit identical to a plain spec run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ConfigurationError
from repro.network.graph import RoadNetwork
from repro.network.oracle import DistanceOracle
from repro.scenarios.compile import BASE_CLASS, CompiledScenario, compile_program
from repro.scenarios.program import ScenarioProgram
from repro.service.facade import MatchingService
from repro.service.spec import PlatformSpec
from repro.simulation.fleet import ServiceRecord
from repro.simulation.metrics import SimulationResult


@dataclass
class ScenarioRunResult:
    """Outcome of one scenario-program run.

    Attributes:
        result: the standard aggregated simulation result.
        compiled: the compiled scenario that was driven (instance, timeline,
            class labels).
        completions: per-request service records, in completion order
            (event engine only; empty under the legacy engine).
        class_stats: per fleet/workload-class aggregates keyed by label.
    """

    result: SimulationResult
    compiled: CompiledScenario
    completions: list[ServiceRecord] = field(default_factory=list)
    class_stats: dict[str, dict[str, float]] = field(default_factory=dict)


def run_program(
    spec: PlatformSpec,
    program: ScenarioProgram | None = None,
    *,
    network: RoadNetwork | None = None,
    oracle: DistanceOracle | None = None,
    on_completion: Callable[[ServiceRecord, float], None] | None = None,
) -> ScenarioRunResult:
    """Compile ``program`` onto ``spec`` and replay it end to end.

    Args:
        spec: the platform (scenario config + dispatcher + engine).
        program: the scenario program; ``None``/empty reproduces the plain run.
        network, oracle: optional pre-built city (sweep reuse). Disruption
            programs mutate the network and dirty the oracle — do not share
            them across disruption runs.
        on_completion: optional observer invoked as ``(record, now)`` for
            every completed/expired service record (event engine only).

    Disruption programs run on every serving path, including ``cluster:``
    specs — the front door broadcasts each timed closure/reopening to its
    shard worker processes via the replica-sync update protocol, so cluster
    replays stay bit-identical to the in-process ``sharded:`` path at K>1.

    Raises:
        ConfigurationError: disruption programs on the legacy engine (it
            snapshots distances up front).
    """
    program = (program or ScenarioProgram(name="baseline")).validate()
    spec.validate()
    if program.disruptions and spec.engine != "event":
        raise ConfigurationError(
            "network disruptions require engine='event'; the legacy loop "
            "snapshots distances up front"
        )

    compiled = compile_program(spec.scenario, program, network=network, oracle=oracle)
    service = _build_service(spec, compiled)

    completions: list[ServiceRecord] = []
    backend = service._backend
    if hasattr(backend, "on_completion"):

        def _observe(record: ServiceRecord, now: float) -> None:
            completions.append(record)
            if on_completion is not None:
                on_completion(record, now)

        backend.on_completion = _observe

    timeline = list(compiled.timeline)
    cursor = 0
    try:
        for request in compiled.instance.requests:
            while cursor < len(timeline) and timeline[cursor].time <= request.release_time:
                action = timeline[cursor]
                service.advance_to(action.time)
                service.apply_network_update(action.apply)
                cursor += 1
            service.submit(request)
        while cursor < len(timeline):
            action = timeline[cursor]
            service.advance_to(action.time)
            service.apply_network_update(action.apply)
            cursor += 1
        result = service.drain()
    finally:
        close = getattr(service, "close", None)
        if close is not None:
            close()

    return ScenarioRunResult(
        result=result,
        compiled=compiled,
        completions=completions,
        class_stats=_class_stats(compiled, completions),
    )


def _build_service(spec: PlatformSpec, compiled: CompiledScenario) -> MatchingService:
    """A serving session over the *compiled* instance (not the spec's own)."""
    if spec.cluster or spec.dispatcher.cluster:
        from repro.cluster.service import ClusterMatchingService  # lazy cycle guard

        return ClusterMatchingService.build(
            compiled.instance,
            inner=spec.dispatcher.algorithm,
            num_shards=spec.dispatcher.num_shards,
            config=spec.dispatcher_config(),
            strategy=spec.dispatcher.shard_strategy,
            escalate_k=spec.dispatcher.shard_escalate_k,
            seed=spec.scenario.seed,
            max_pending=spec.cluster_max_pending,
            dispatch_timeout=spec.cluster_dispatch_timeout,
            retry_attempts=spec.cluster_retry_attempts,
            retry_backoff_s=spec.cluster_retry_backoff_s,
            max_restarts=spec.cluster_max_restarts,
            restart_delay_s=spec.cluster_restart_delay_s,
            collect_completions=spec.collect_completions,
        )
    return MatchingService(
        compiled.instance,
        spec.build_dispatcher(),
        engine=spec.engine,
        collect_completions=spec.collect_completions,
    )


def _class_stats(
    compiled: CompiledScenario, completions: list[ServiceRecord]
) -> dict[str, dict[str, float]]:
    """Per-class request counts, served counts and mean waits."""
    stats: dict[str, dict[str, float]] = {}
    for request_id, label in compiled.request_classes.items():
        entry = stats.setdefault(
            label, {"requests": 0.0, "served": 0.0, "served_rate": 0.0, "mean_wait_seconds": 0.0}
        )
        entry["requests"] += 1.0
    waits: dict[str, list[float]] = {}
    for record in completions:
        if not record.completed:
            continue
        label = compiled.request_classes.get(record.request.id, BASE_CLASS)
        entry = stats.setdefault(
            label, {"requests": 0.0, "served": 0.0, "served_rate": 0.0, "mean_wait_seconds": 0.0}
        )
        entry["served"] += 1.0
        waits.setdefault(label, []).append(record.pickup_time - record.request.release_time)
    for label, entry in stats.items():
        if entry["requests"]:
            entry["served_rate"] = entry["served"] / entry["requests"]
        class_waits = waits.get(label)
        if class_waits:
            entry["mean_wait_seconds"] = sum(class_waits) / len(class_waits)
    return stats


__all__ = ["ScenarioRunResult", "run_program"]
