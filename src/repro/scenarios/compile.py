"""Compile a :class:`ScenarioProgram` into engine-ready inputs.

:func:`compile_program` lowers a declarative program onto a base
:class:`~repro.workloads.scenarios.ScenarioConfig`, producing a
:class:`CompiledScenario`:

* a ready-to-serve :class:`~repro.core.instance.URPSMInstance` whose fleet,
  request stream and dynamics realise the program's fleet/workload/surge
  components (every generator seed derives from the config's master seed and
  the component name, so compilation is deterministic);
* a chronological ``timeline`` of :class:`NetworkAction` values — concrete
  street closures/reopenings resolved at compile time against a scratch copy
  of the network, each rejected if it would disconnect the graph;
* per-id class labels so results can be reported per fleet/workload class.

The empty program short-circuits to
:func:`~repro.workloads.scenarios.build_instance`, so plain runs stay
bit-for-bit identical through the scenario layer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace

from repro.core.instance import InstanceDynamics, URPSMInstance, WorkerShift
from repro.core.objective import ObjectiveConfig, PenaltyPolicy
from repro.core.types import Request, Worker
from repro.exceptions import ConfigurationError
from repro.network.graph import Edge, RoadNetwork, induced_subnetwork
from repro.network.oracle import DistanceOracle
from repro.scenarios.program import NetworkDisruption, ScenarioProgram
from repro.utils.rng import derive_seed, make_rng
from repro.workloads.distributions import HotspotModel, sample_request_capacity
from repro.workloads.requests import (
    RequestGeneratorConfig,
    generate_requests,
    sample_cancellations,
)
from repro.workloads.scenarios import (
    ScenarioConfig,
    build_instance,
    build_network,
    make_oracle,
)
from repro.workloads.workers import (
    WorkerGeneratorConfig,
    generate_workers,
    staggered_shifts,
)

BASE_CLASS = "base"
"""Class label of workers/requests produced by the scalar base config."""

_MIN_DIRECT_SECONDS = 30.0
_SURGE_ATTEMPTS = 20


@dataclass(frozen=True)
class EdgeSpec:
    """Plain-value snapshot of one road edge (for closing and reopening)."""

    u: int
    v: int
    length: float
    speed: float
    road_class: str

    @classmethod
    def of(cls, edge: Edge) -> "EdgeSpec":
        return cls(
            u=edge.u, v=edge.v, length=edge.length, speed=edge.speed, road_class=edge.road_class
        )


@dataclass(frozen=True)
class NetworkAction:
    """One scheduled road-network mutation (all edges of one disruption).

    Attributes:
        time: absolute simulation time in seconds.
        kind: ``"close"`` or ``"reopen"``.
        disruption: name of the originating disruption.
        edges: the concrete edges affected.
    """

    time: float
    kind: str
    disruption: str
    edges: tuple[EdgeSpec, ...]

    def apply(self, network: RoadNetwork) -> None:
        """Apply this action to ``network`` (engine mutation callback)."""
        if self.kind == "close":
            for spec in self.edges:
                network.remove_edge(spec.u, spec.v)
        elif self.kind == "reopen":
            for spec in self.edges:
                network.add_edge(
                    spec.u,
                    spec.v,
                    length=spec.length,
                    speed=spec.speed,
                    road_class=spec.road_class,
                )
        else:  # pragma: no cover - constructed only by compile_program
            raise ConfigurationError(f"unknown network action kind {self.kind!r}")


@dataclass
class CompiledScenario:
    """A scenario lowered to engine-ready inputs.

    Attributes:
        config: the base scalar config.
        program: the source program (validated).
        instance: the materialised problem instance.
        timeline: chronological network actions (empty without disruptions).
        worker_classes: ``worker id -> fleet class name``.
        request_classes: ``request id -> workload class / surge label``.
    """

    config: ScenarioConfig
    program: ScenarioProgram
    instance: URPSMInstance
    timeline: tuple[NetworkAction, ...]
    worker_classes: dict[int, str]
    request_classes: dict[int, str]

    @property
    def has_disruptions(self) -> bool:
        """Whether the timeline contains any scheduled network mutation."""
        return bool(self.timeline)


def compile_program(
    config: ScenarioConfig,
    program: ScenarioProgram | None = None,
    network: RoadNetwork | None = None,
    oracle: DistanceOracle | None = None,
) -> CompiledScenario:
    """Lower ``program`` onto ``config`` into a :class:`CompiledScenario`.

    Passing a pre-built ``network``/``oracle`` reuses the expensive city
    construction, exactly like :func:`build_instance`. Note that running a
    compiled scenario with disruptions *mutates* the network and dirties the
    oracle — reuse across runs is only safe for disruption-free programs.
    """
    program = (program or ScenarioProgram(name="baseline")).validate()
    if network is None:
        network = build_network(config)
    if oracle is None:
        oracle = make_oracle(network, config)

    if program.is_empty:
        instance = build_instance(config, network=network, oracle=oracle)
        return CompiledScenario(
            config=config,
            program=program,
            instance=instance,
            timeline=(),
            worker_classes={worker.id: BASE_CLASS for worker in instance.workers},
            request_classes={request.id: BASE_CLASS for request in instance.requests},
        )

    objective = config.objective()
    horizon_seconds = config.horizon_hours * 3600.0

    workers, worker_classes, shifts = _compile_fleet(config, program, network, horizon_seconds)
    labelled = _compile_workload(config, program, network, oracle, objective, horizon_seconds)
    labelled.extend(_compile_surges(config, program, network, oracle, objective))

    # one global stream: stable sort by release time, then dense re-identification
    labelled.sort(key=lambda pair: pair[0].release_time)
    requests: list[Request] = []
    request_classes: dict[int, str] = {}
    for new_id, (request, label) in enumerate(labelled):
        requests.append(replace(request, id=new_id))
        request_classes[new_id] = label

    dynamics = InstanceDynamics()
    if config.cancellation_rate > 0.0:
        dynamics.cancellations = sample_cancellations(
            requests,
            rate=config.cancellation_rate,
            seed=derive_seed(config.seed, "cancellations"),
        )
    dynamics.shifts = shifts

    instance = URPSMInstance(
        network=network,
        oracle=oracle,
        workers=workers,
        requests=requests,
        objective=objective,
        name=f"{config.city}-{program.name}-W{len(workers)}-R{len(requests)}",
        dynamics=None if dynamics.is_empty else dynamics,
    )
    instance.validate()

    timeline = _compile_disruptions(config, program, network)
    return CompiledScenario(
        config=config,
        program=program,
        instance=instance,
        timeline=timeline,
        worker_classes=worker_classes,
        request_classes=request_classes,
    )


# ------------------------------------------------------------------- fleet


def _compile_fleet(
    config: ScenarioConfig,
    program: ScenarioProgram,
    network: RoadNetwork,
    horizon_seconds: float,
) -> tuple[list[Worker], dict[int, str], list[WorkerShift]]:
    """Materialise the fleet: program classes, or the scalar base fleet."""
    if not program.fleet:
        workers = generate_workers(
            network,
            WorkerGeneratorConfig(
                count=config.num_workers,
                nominal_capacity=config.worker_capacity,
                seed=derive_seed(config.seed, "workers"),
            ),
        )
        shifts: list[WorkerShift] = []
        if config.shift_hours > 0.0:
            shifts = staggered_shifts(
                workers,
                horizon_seconds=horizon_seconds,
                shift_seconds=config.shift_hours * 3600.0,
                seed=derive_seed(config.seed, "shifts"),
            )
        return workers, {worker.id: BASE_CLASS for worker in workers}, shifts

    workers = []
    worker_classes: dict[int, str] = {}
    shifts = []
    next_id = 0
    for fleet_class in program.fleet:
        generated = generate_workers(
            network,
            WorkerGeneratorConfig(
                count=fleet_class.count,
                nominal_capacity=fleet_class.capacity,
                hotspot_share=fleet_class.hotspot_share,
                seed=derive_seed(config.seed, "fleet", fleet_class.name),
            ),
        )
        # a class *is* its capacity: pin it instead of the generator's draw
        renumbered = [
            replace(worker, id=next_id + offset, capacity=fleet_class.capacity)
            for offset, worker in enumerate(generated)
        ]
        for worker in renumbered:
            worker_classes[worker.id] = fleet_class.name
        if fleet_class.shift_hours > 0.0:
            shifts.extend(
                staggered_shifts(
                    renumbered,
                    horizon_seconds=horizon_seconds,
                    shift_seconds=fleet_class.shift_hours * 3600.0,
                    seed=derive_seed(config.seed, "shifts", fleet_class.name),
                )
            )
        workers.extend(renumbered)
        next_id += len(renumbered)
    return workers, worker_classes, shifts


# ----------------------------------------------------------------- workload


def _compile_workload(
    config: ScenarioConfig,
    program: ScenarioProgram,
    network: RoadNetwork,
    oracle: DistanceOracle,
    objective: ObjectiveConfig,
    horizon_seconds: float,
) -> list[tuple[Request, str]]:
    """Materialise the background request stream (classes or scalar base)."""
    if not program.workload:
        base = generate_requests(
            network,
            oracle,
            objective,
            RequestGeneratorConfig(
                count=config.num_requests,
                horizon_seconds=horizon_seconds,
                deadline_seconds=config.deadline_minutes * 60.0,
                seed=derive_seed(config.seed, "requests"),
            ),
        )
        return [(request, BASE_CLASS) for request in base]

    labelled: list[tuple[Request, str]] = []
    for workload_class in program.workload:
        class_objective = ObjectiveConfig(
            alpha=config.alpha,
            penalty_policy=PenaltyPolicy.PROPORTIONAL,
            penalty_value=(
                config.penalty_factor
                if workload_class.penalty_factor is None
                else workload_class.penalty_factor
            ),
        )
        deadline_minutes = (
            config.deadline_minutes
            if workload_class.deadline_minutes is None
            else workload_class.deadline_minutes
        )
        generated = generate_requests(
            network,
            oracle,
            class_objective,
            RequestGeneratorConfig(
                count=workload_class.count,
                horizon_seconds=horizon_seconds,
                deadline_seconds=deadline_minutes * 60.0,
                seed=derive_seed(config.seed, "workload", workload_class.name),
            ),
        )
        if workload_class.capacity is not None:
            generated = [
                replace(request, capacity=workload_class.capacity) for request in generated
            ]
        labelled.extend((request, workload_class.name) for request in generated)
    return labelled


# ------------------------------------------------------------------- surges


def _compile_surges(
    config: ScenarioConfig,
    program: ScenarioProgram,
    network: RoadNetwork,
    oracle: DistanceOracle,
    objective: ObjectiveConfig,
) -> list[tuple[Request, str]]:
    """Materialise every surge as a burst of venue-anchored requests."""
    labelled: list[tuple[Request, str]] = []
    vertices = sorted(network.vertices())
    for surge in program.surges:
        seed = derive_seed(config.seed, "surge", surge.name)
        rng = make_rng(seed)
        # one hotspot, no uniform share: every origin clusters at the venue
        venue = HotspotModel(
            network=network,
            num_hotspots=1,
            spread_fraction=surge.spread_fraction,
            uniform_share=0.0,
            rng=make_rng(seed + 1),
        )
        start = surge.start_hours * 3600.0
        duration = surge.duration_minutes * 60.0
        deadline_seconds = (
            config.deadline_minutes if surge.deadline_minutes is None else surge.deadline_minutes
        ) * 60.0
        releases = sorted(float(start + rng.random() * duration) for _ in range(surge.count))
        label = f"surge:{surge.name}"
        for index in range(surge.count):
            origin, destination, direct = _sample_surge_trip(venue, vertices, oracle, rng)
            release = releases[index]
            capacity = surge.capacity if surge.capacity is not None else sample_request_capacity(rng)
            labelled.append(
                (
                    Request(
                        id=index,  # placeholder; re-identified after the merge
                        origin=origin,
                        destination=destination,
                        release_time=release,
                        deadline=release + deadline_seconds,
                        penalty=objective.penalty_for(direct),
                        capacity=capacity,
                    ),
                    label,
                )
            )
    return labelled


def _sample_surge_trip(venue, vertices, oracle, rng) -> tuple[int, int, float]:
    """Venue-anchored origin, city-wide destination, non-trivial direct time."""
    origin, destination, direct = 0, 0, float("inf")
    for _ in range(_SURGE_ATTEMPTS):
        origin = venue.sample_vertex()
        destination = int(vertices[int(rng.integers(len(vertices)))])
        if destination == origin:
            continue
        direct = oracle.distance(origin, destination)
        if _MIN_DIRECT_SECONDS <= direct < float("inf"):
            return origin, destination, direct
    if destination == origin or direct == float("inf"):
        raise ConfigurationError(
            "could not sample a reachable surge trip; is the network connected?"
        )
    return origin, destination, direct


# -------------------------------------------------------------- disruptions


def _compile_disruptions(
    config: ScenarioConfig, program: ScenarioProgram, network: RoadNetwork
) -> tuple[NetworkAction, ...]:
    """Resolve disruptions to concrete, connectivity-safe edge closures.

    Resolution replays the close/reopen schedule in chronological order
    against a scratch copy of the network, so a candidate street is judged
    against the topology as it will stand *at closure time* (earlier
    closures included). Any candidate whose removal would disconnect the
    scratch graph is skipped — runtime application can then never strand a
    committed trip at an unreachable vertex.
    """
    if not program.disruptions:
        return ()
    scratch = induced_subnetwork(network, network.vertices())
    events: list[tuple[float, int, str, NetworkDisruption]] = []
    for order, disruption in enumerate(program.disruptions):
        start = disruption.start_hours * 3600.0
        events.append((start, order, "close", disruption))
        if disruption.duration_minutes is not None:
            events.append(
                (start + disruption.duration_minutes * 60.0, order, "reopen", disruption)
            )
    events.sort(key=lambda event: (event[0], event[1]))

    closed: dict[str, tuple[EdgeSpec, ...]] = {}
    timeline: list[NetworkAction] = []
    for time, _order, kind, disruption in events:
        if kind == "close":
            specs = _resolve_closure(config, disruption, scratch)
            closed[disruption.name] = specs
            for spec in specs:
                scratch.remove_edge(spec.u, spec.v)
        else:
            specs = closed[disruption.name]
            for spec in specs:
                scratch.add_edge(
                    spec.u, spec.v, length=spec.length, speed=spec.speed,
                    road_class=spec.road_class,
                )
        if specs:
            timeline.append(
                NetworkAction(time=time, kind=kind, disruption=disruption.name, edges=specs)
            )
    return tuple(timeline)


def _resolve_closure(
    config: ScenarioConfig, disruption: NetworkDisruption, scratch: RoadNetwork
) -> tuple[EdgeSpec, ...]:
    """Pick the concrete streets a disruption closes (seeded, safe)."""
    rng = make_rng(derive_seed(config.seed, "disruption", disruption.name))
    vertices = sorted(scratch.vertices())
    focus = int(vertices[int(rng.integers(len(vertices)))])
    focus_point = scratch.coordinates(focus)

    def distance_to_focus(edge: Edge) -> float:
        a = scratch.coordinates(edge.u)
        b = scratch.coordinates(edge.v)
        mid_x = (a.x + b.x) / 2.0
        mid_y = (a.y + b.y) / 2.0
        return (mid_x - focus_point.x) ** 2 + (mid_y - focus_point.y) ** 2

    candidates = sorted(
        scratch.edges(), key=lambda edge: (distance_to_focus(edge), edge.u, edge.v)
    )
    chosen: list[EdgeSpec] = []
    for edge in candidates:
        if len(chosen) == disruption.edge_count:
            break
        removed = scratch.remove_edge(edge.u, edge.v)
        if _still_connected(scratch, edge.u, edge.v):
            # keep it removed: later candidates of the same closure must be
            # judged against the joint topology, not each in isolation
            chosen.append(EdgeSpec.of(removed))
        else:
            scratch.add_edge(
                removed.u,
                removed.v,
                length=removed.length,
                speed=removed.speed,
                road_class=removed.road_class,
            )
    # restore the chosen edges too; the caller replays the final schedule
    for spec in chosen:
        scratch.add_edge(
            spec.u, spec.v, length=spec.length, speed=spec.speed, road_class=spec.road_class
        )
    return tuple(chosen)


def _still_connected(network: RoadNetwork, source: int, target: int) -> bool:
    """BFS reachability check between the endpoints of a removed edge."""
    if source == target:
        return True
    seen = {source}
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        for neighbour in network.neighbours(vertex):
            if neighbour == target:
                return True
            if neighbour not in seen:
                seen.add(neighbour)
                queue.append(neighbour)
    return False


__all__ = ["BASE_CLASS", "CompiledScenario", "EdgeSpec", "NetworkAction", "compile_program"]
