"""Canonical content hashing of road networks.

The artifact store keys preprocessed distance indexes by *what the network
is*, not what file it came from: a SHA-256 over the canonical CSR arrays.
Two loads of the same extract — or the same synthetic generator with the
same seed — hash identically and share one cache entry, while any change to
topology, travel costs or geometry changes the key.

The hash covers exactly the inputs the distance backends consume: vertex
identifiers, CSR topology (``indptr``/``indices``), traversal costs in
seconds, and planar coordinates (the Euclidean-lower-bound inputs). Floats
are hashed as raw little-endian IEEE-754 bytes, so the stable float round
trip of :mod:`repro.network.io` guarantees stable hashes across
save/load cycles.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.network.graph import RoadNetwork

#: bump when the canonical byte layout below changes
HASH_SCHEMA = b"repro-network-v1"


def network_content_hash(network: RoadNetwork) -> str:
    """Hex SHA-256 identifying ``network``'s backend-relevant content."""
    csr = network.csr
    digest = hashlib.sha256()
    digest.update(HASH_SCHEMA)
    for tag, array, dtype in (
        (b"vertex_ids", csr.vertex_ids, np.int64),
        (b"indptr", csr.indptr, np.int64),
        (b"indices", csr.indices, np.int64),
        (b"costs", csr.costs, np.float64),
        (b"xs", csr.xs, np.float64),
        (b"ys", csr.ys, np.float64),
    ):
        canonical = np.ascontiguousarray(array, dtype=dtype)
        if canonical.dtype.byteorder == ">":  # pragma: no cover - BE hosts only
            canonical = canonical.astype(canonical.dtype.newbyteorder("<"))
        digest.update(tag)
        digest.update(len(canonical).to_bytes(8, "little"))
        digest.update(canonical.tobytes())
    return digest.hexdigest()


__all__ = ["HASH_SCHEMA", "network_content_hash"]
