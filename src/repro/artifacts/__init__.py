"""Content-addressed preprocessing artifacts for distance backends.

``ArtifactStore`` persists built APSP / contraction-hierarchy / hub-label
state as ``.npz`` + manifest entries keyed by a canonical hash of the
network's CSR content, and the :class:`~repro.network.oracle.DistanceOracle`
loads them transparently via ``artifact_dir=...`` — turning minutes of
preprocessing into a sub-second, bit-identical cold start.
"""

from __future__ import annotations

from repro.artifacts.hashing import HASH_SCHEMA, network_content_hash
from repro.artifacts.store import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    PERSISTABLE_BACKENDS,
    ArtifactStore,
)

__all__ = [
    "ArtifactStore",
    "FORMAT_VERSION",
    "HASH_SCHEMA",
    "MANIFEST_NAME",
    "PERSISTABLE_BACKENDS",
    "network_content_hash",
]
