"""Content-addressed on-disk store for preprocessed distance backends.

Building a distance index dominates cold start: the dense APSP matrix runs
one Dijkstra per vertex, and hub labels add a contraction on top. The paper's
platform amortises this by preprocessing the city network once; the store
reproduces that by persisting each backend's built state on disk, keyed by
:func:`repro.artifacts.hashing.network_content_hash` — so a cache entry can
never be served for a network it was not built from.

Layout (``FORMAT_VERSION`` bumps on any change)::

    <root>/<hash[:2]>/<hash[2:]>/
        manifest.json     # format version, hash, network summary, backends
        apsp.npz          # matrix, vertex_ids
        ch.npz            # rank, up_indptr, up_indices, up_costs, meta
        hub_labels.npz    # indptr, hubs, dists, order

Loads are **bit-identical**: the arrays come back ``np.load``-exact, so a
loaded backend answers every query with the very float a fresh build would
(``benchmarks/bench_cold_start.py`` and the property tests enforce this).
Corrupt or stale entries raise :class:`~repro.exceptions.ArtifactError` from
:meth:`ArtifactStore.load_backend`; the :meth:`ArtifactStore.load_or_build`
path used by the oracle treats them as cache misses and rebuilds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.artifacts.hashing import network_content_hash
from repro.exceptions import ArtifactError
from repro.network.ch import ContractionHierarchy
from repro.network.graph import RoadNetwork
from repro.network.hub_labeling import HubLabels

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.backends import DistanceBackend
    from repro.network.oracle import DistanceOracle

FORMAT_VERSION = 1

#: backends whose built state the store can persist (``dijkstra`` has none).
PERSISTABLE_BACKENDS = ("apsp", "ch", "hub_labels")

MANIFEST_NAME = "manifest.json"


class ArtifactStore:
    """Content-addressed cache of preprocessed distance-backend state."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------- addressing

    def entry_dir(self, content_hash: str) -> Path:
        """Directory holding every artifact of one network."""
        if len(content_hash) < 3:
            raise ArtifactError(f"malformed content hash {content_hash!r}")
        return self.root / content_hash[:2] / content_hash[2:]

    def artifact_path(self, content_hash: str, backend: str) -> Path:
        self._check_backend(backend)
        return self.entry_dir(content_hash) / f"{backend}.npz"

    def manifest_path(self, content_hash: str) -> Path:
        return self.entry_dir(content_hash) / MANIFEST_NAME

    def has(self, content_hash: str, backend: str) -> bool:
        """Whether a (possibly invalid) artifact exists for this key."""
        return self.artifact_path(content_hash, backend).exists()

    def entries(self) -> list[dict[str, Any]]:
        """Manifests of every entry in the store (for ``repro preprocess``)."""
        if not self.root.exists():
            return []
        manifests = []
        for path in sorted(self.root.glob(f"*/*/{MANIFEST_NAME}")):
            try:
                manifests.append(json.loads(path.read_text(encoding="utf-8")))
            except (OSError, json.JSONDecodeError):
                continue
        return manifests

    @staticmethod
    def _check_backend(backend: str) -> None:
        if backend not in PERSISTABLE_BACKENDS:
            raise ArtifactError(
                f"backend {backend!r} has no persistable state; "
                f"persistable: {PERSISTABLE_BACKENDS}"
            )

    # ------------------------------------------------------------------- save

    def save_backend(
        self,
        network: RoadNetwork,
        backend: "DistanceBackend",
        content_hash: str | None = None,
    ) -> Path:
        """Persist a built backend's state; returns the artifact path."""
        self._check_backend(backend.name)
        if content_hash is None:
            content_hash = network_content_hash(network)
        entry = self.entry_dir(content_hash)
        entry.mkdir(parents=True, exist_ok=True)
        path = entry / f"{backend.name}.npz"

        if backend.name == "apsp":
            arrays = {
                "matrix": backend.matrix,
                "vertex_ids": network.csr.vertex_ids,
            }
        elif backend.name == "ch":
            hierarchy: ContractionHierarchy = backend.hierarchy
            arrays = {
                "rank": np.asarray(hierarchy.rank, dtype=np.int64),
                "up_indptr": np.asarray(hierarchy.up_indptr, dtype=np.int64),
                "up_indices": np.asarray(hierarchy.up_indices, dtype=np.int64),
                "up_costs": np.asarray(hierarchy.up_costs, dtype=np.float64),
                "meta": np.array(
                    [hierarchy.num_vertices, hierarchy.num_shortcuts], dtype=np.int64
                ),
            }
        else:  # hub_labels
            labels: HubLabels = backend.labels
            arrays = {
                "indptr": np.asarray(labels.indptr, dtype=np.int64),
                "hubs": np.asarray(labels.hubs, dtype=np.int64),
                "dists": np.asarray(labels.dists, dtype=np.float64),
                "order": np.asarray(labels.order, dtype=np.int64),
            }
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)

        self._update_manifest(entry, content_hash, network, backend)
        return path

    def _update_manifest(
        self,
        entry: Path,
        content_hash: str,
        network: RoadNetwork,
        backend: "DistanceBackend",
    ) -> None:
        manifest_file = entry / MANIFEST_NAME
        manifest: dict[str, Any] = {}
        if manifest_file.exists():
            try:
                manifest = json.loads(manifest_file.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                manifest = {}
        manifest.update(
            {
                "format_version": FORMAT_VERSION,
                "content_hash": content_hash,
                "network": {
                    "name": network.name,
                    "num_vertices": network.num_vertices,
                    "num_edges": network.num_edges,
                },
            }
        )
        backends = manifest.setdefault("backends", {})
        backends[backend.name] = {
            "file": f"{backend.name}.npz",
            "build_seconds": backend.build_seconds,
        }
        manifest_file.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    # ------------------------------------------------------------------- load

    def load_backend(
        self,
        name: str,
        network: RoadNetwork,
        host: "DistanceOracle | None" = None,
        content_hash: str | None = None,
    ) -> "DistanceBackend | None":
        """Load a cached backend for ``network``.

        Returns ``None`` when no artifact exists for the key; raises
        :class:`ArtifactError` when one exists but is invalid (version or
        hash mismatch, missing arrays, shape inconsistencies).
        """
        from repro.network.backends import APSPBackend, CHBackend, HubLabelBackend

        self._check_backend(name)
        if content_hash is None:
            content_hash = network_content_hash(network)
        path = self.artifact_path(content_hash, name)
        if not path.exists():
            return None
        manifest = self._validated_manifest(content_hash, name)

        try:
            with np.load(path) as archive:
                arrays = {key: archive[key] for key in archive.files}
        except (OSError, ValueError, KeyError) as error:
            raise ArtifactError(f"cannot read artifact {path}: {error}") from error

        csr = network.csr
        n = csr.num_vertices
        try:
            if name == "apsp":
                matrix = arrays["matrix"]
                vertex_ids = arrays["vertex_ids"]
                if matrix.shape != (n, n) or not np.array_equal(vertex_ids, csr.vertex_ids):
                    raise ArtifactError(
                        f"{path}: artifact does not match the network "
                        f"(matrix {matrix.shape}, expected {(n, n)})"
                    )
                return APSPBackend(network, matrix=matrix)
            if name == "ch":
                meta = arrays["meta"]
                if int(meta[0]) != n or arrays["rank"].size != n:
                    raise ArtifactError(
                        f"{path}: hierarchy built for {int(meta[0])} vertices, "
                        f"network has {n}"
                    )
                hierarchy = ContractionHierarchy(
                    num_vertices=n,
                    # the builder produces plain lists; restore the same types
                    # so queries execute identical code paths
                    rank=arrays["rank"].tolist(),
                    up_indptr=arrays["up_indptr"].tolist(),
                    up_indices=arrays["up_indices"].tolist(),
                    up_costs=arrays["up_costs"].tolist(),
                    num_shortcuts=int(meta[1]),
                    build_seconds=float(
                        manifest["backends"]["ch"].get("build_seconds", 0.0)
                    ),
                )
                return CHBackend(network, host, hierarchy=hierarchy)
            indptr = arrays["indptr"]
            if indptr.size != n + 1 or arrays["hubs"].size != arrays["dists"].size:
                raise ArtifactError(
                    f"{path}: label arrays inconsistent with the network "
                    f"(indptr {indptr.size}, expected {n + 1})"
                )
            labels = HubLabels(
                indptr=indptr,
                hubs=arrays["hubs"],
                dists=arrays["dists"],
                position=csr.position,
                order=arrays["order"].tolist(),
            )
            return HubLabelBackend(network, labels=labels)
        except KeyError as error:
            raise ArtifactError(f"{path}: missing array {error.args[0]!r}") from error

    def _validated_manifest(self, content_hash: str, backend: str) -> dict[str, Any]:
        manifest_file = self.manifest_path(content_hash)
        try:
            manifest = json.loads(manifest_file.read_text(encoding="utf-8"))
        except FileNotFoundError as error:
            raise ArtifactError(f"artifact manifest missing: {manifest_file}") from error
        except (OSError, json.JSONDecodeError) as error:
            raise ArtifactError(f"unreadable manifest {manifest_file}: {error}") from error
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise ArtifactError(
                f"{manifest_file}: format version {version!r}, expected {FORMAT_VERSION}"
            )
        if manifest.get("content_hash") != content_hash:
            raise ArtifactError(
                f"{manifest_file}: content hash mismatch "
                f"({manifest.get('content_hash')!r} != {content_hash!r})"
            )
        if backend not in manifest.get("backends", {}):
            raise ArtifactError(f"{manifest_file}: no record of backend {backend!r}")
        return manifest

    # ---------------------------------------------------------- orchestration

    def load_or_build(
        self,
        name: str,
        network: RoadNetwork,
        host: "DistanceOracle | None" = None,
        content_hash: str | None = None,
    ) -> "tuple[DistanceBackend, bool]":
        """Serve ``name`` from the store, building (and saving) on miss.

        Returns ``(backend, loaded_from_store)``. Invalid cache entries are
        rebuilt and overwritten rather than propagated.
        """
        from repro.network.backends import make_backend

        self._check_backend(name)
        if content_hash is None:
            content_hash = network_content_hash(network)
        try:
            cached = self.load_backend(name, network, host, content_hash=content_hash)
        except ArtifactError:
            cached = None
        if cached is not None:
            return cached, True
        built = make_backend(name, network, host)
        self.save_backend(network, built, content_hash=content_hash)
        return built, False


__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "PERSISTABLE_BACKENDS",
    "ArtifactStore",
]
