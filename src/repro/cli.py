"""Command-line interface for the URPSM reproduction.

Eleven sub-commands cover the common workflows::

    python -m repro simulate     --city chengdu-like --algorithm pruneGreedyDP
    python -m repro serve-replay --city chengdu-like --algorithm batch
    python -m repro compare      --city nyc-like --scale tiny
    python -m repro sweep        --parameter num_workers --values 20 40 80 --jobs 4
    python -m repro figure       figure3 --scale tiny --output results/fig3.json
    python -m repro datasets     --scale small
    python -m repro ingest       extracts/manhattan.geojson --output cities/manhattan.json.gz
    python -m repro preprocess   --city metro-grid --artifact-dir .repro-artifacts
    python -m repro algorithms
    python -m repro scenarios    rush-hour-chaos
    python -m repro stress       --scenarios 30 --seed 2018 --output BENCH_stress.json

``simulate`` runs one algorithm on one scenario; ``serve-replay`` streams the
same workload through the online :class:`~repro.service.facade.
MatchingService` and prints every incremental decision; ``compare`` runs the
paper's five algorithms on the same scenario and prints the comparison table;
``sweep`` fans a parameter sweep out over a process pool (``--jobs``) with
deterministic per-point seeds; ``figure`` reproduces one of Figures 3-7 and
optionally writes the raw series to JSON/CSV/Markdown; ``datasets`` prints
the Table 4 statistics of the synthetic cities; ``ingest`` normalises a real
GeoJSON/CSV road extract into the repo's network schema; ``preprocess``
builds (or lists) the content-addressed distance-backend artifacts of a
city; ``algorithms`` lists every registered dispatcher; ``scenarios`` lists
or describes the declarative scenario presets (heterogeneous fleets, demand
surges, network disruptions, multi-class workloads; see
:mod:`repro.scenarios`); ``stress`` sweeps seeded random scenario programs
against the dispatcher registry and fails on crashes, non-determinism or
invariant violations.

Scenario commands accept real maps everywhere a registry city is accepted:
``--city file:<path>`` ingests the referenced extract, and ``--artifact-dir``
attaches the preprocessing store so precomputed oracle backends load from
disk when cached.

Scenario commands accept ``--shards K`` to wrap the chosen algorithm(s) in
the sharded dispatcher (spatial partitioning + cross-shard escalation; see
``repro.sharding``); ``K=1`` reproduces the unsharded run exactly.
``simulate`` and ``serve-replay`` alternatively accept ``--spec FILE`` — a
JSON/TOML :class:`~repro.service.spec.PlatformSpec` describing the whole
platform declaratively.

Every scenario run — simulate, compare, sweep, figure — constructs a
:class:`~repro.service.facade.MatchingService` from a
:class:`~repro.service.spec.PlatformSpec` and replays the workload through
it, so batch CLI runs execute the exact online-serving code path.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.dispatch import DispatcherSpec, list_dispatchers
from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentConfig, PAPER_ALGORITHMS, SCALES
from repro.experiments.figures import FIGURES
from repro.experiments.io import figure_to_markdown, save_figure_csv, save_figure_json
from repro.experiments.parallel import ParallelSweepRunner
from repro.experiments.reporting import format_figure, format_results, format_table
from repro.experiments.runner import ScenarioRunner
from repro.experiments.tables import table4_datasets, table5_parameters
from repro.service.facade import MatchingService
from repro.service.spec import PlatformSpec
from repro.sharding.partitioner import STRATEGIES
from repro.simulation.simulator import ENGINES
from repro.workloads.scenarios import CITY_BUILDERS, FILE_CITY_PREFIX, ScenarioConfig


def _algorithm_name(name: str) -> str:
    """Argparse type validating registry names with close-match suggestions."""
    try:
        DispatcherSpec.parse(name)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(
            f"{exc} — run 'repro algorithms' to list every registered dispatcher"
        ) from exc
    return name


def _city_name(name: str) -> str:
    """Argparse type accepting registry cities and ``file:<path>`` extracts."""
    if name.startswith(FILE_CITY_PREFIX):
        if not name[len(FILE_CITY_PREFIX):]:
            raise argparse.ArgumentTypeError(
                f"'{FILE_CITY_PREFIX}' names no file; use {FILE_CITY_PREFIX}<path>"
            )
        return name
    if name in CITY_BUILDERS:
        return name
    raise argparse.ArgumentTypeError(
        f"unknown city {name!r}; available: {sorted(CITY_BUILDERS)} "
        f"or '{FILE_CITY_PREFIX}<path>' for a GeoJSON/CSV extract"
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Unified Approach to Route Planning for Shared Mobility'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser("simulate", help="run one algorithm on one scenario")
    _add_scenario_arguments(simulate)
    simulate.add_argument("--algorithm", default="pruneGreedyDP", type=_algorithm_name,
                          help="registry name ('repro algorithms' lists them); "
                               "'sharded:<inner>' wraps in the sharded dispatcher")
    simulate.add_argument("--spec", type=Path, default=None,
                          help="load the whole platform from a JSON/TOML PlatformSpec "
                               "file instead of the scenario flags")

    serve_replay = subparsers.add_parser(
        "serve-replay",
        help="stream the workload through the online MatchingService and print "
             "every incremental decision",
    )
    _add_scenario_arguments(serve_replay)
    serve_replay.add_argument("--algorithm", default="pruneGreedyDP", type=_algorithm_name)
    serve_replay.add_argument("--spec", type=Path, default=None,
                              help="load the whole platform from a JSON/TOML "
                                   "PlatformSpec file instead of the scenario flags")
    serve_replay.add_argument("--max-requests", type=int, default=None,
                              help="stop after streaming this many requests")
    serve_replay.add_argument("--quiet", action="store_true",
                              help="suppress per-decision lines (print the summary only)")
    serve_replay.add_argument("--cluster", action="store_true",
                              help="serve through shard worker processes (one per "
                                   "spatial shard; size the worker pool with "
                                   "--shards K) instead of the in-process dispatcher")
    serve_replay.add_argument("--max-pending", type=int, default=1024,
                              help="cluster backpressure: outstanding per-shard "
                                   "commands admitted before requests are rejected "
                                   "as saturated")
    serve_replay.add_argument("--retry-attempts", type=int, default=3,
                              help="cluster self-healing: bounded retries per "
                                   "shard-worker pipe operation before the worker "
                                   "is marked down")
    serve_replay.add_argument("--max-restarts", type=int, default=2,
                              help="cluster self-healing: respawn budget per shard "
                                   "worker (0 disables respawn; exhausted shards "
                                   "serve degraded in-process)")
    serve_replay.add_argument("--restart-delay", type=float, default=0.0,
                              help="cluster self-healing: simulated seconds after "
                                   "a worker death before its respawn is adopted")

    compare = subparsers.add_parser("compare", help="compare the paper's algorithms on one scenario")
    _add_scenario_arguments(compare)
    compare.add_argument("--algorithms", nargs="*", default=PAPER_ALGORITHMS,
                         type=_algorithm_name)

    sweep = subparsers.add_parser(
        "sweep", help="run a parameter sweep over a process pool (--jobs)"
    )
    _add_scenario_arguments(sweep)
    sweep.add_argument("--parameter", default="num_workers",
                       choices=sorted(field.name for field in dataclasses.fields(ScenarioConfig)),
                       help="ScenarioConfig field to sweep")
    sweep.add_argument("--values", nargs="+", required=True,
                       help="values of the swept parameter (coerced to the field type)")
    sweep.add_argument("--algorithms", nargs="*", default=["pruneGreedyDP"],
                       type=_algorithm_name)
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = serial; results are identical either way)")
    sweep.add_argument("--replicates", type=int, default=1,
                       help="independent workload seeds per sweep value")
    sweep.add_argument("--output", type=Path, default=None,
                       help="write the per-run rows to this JSON file")

    figure = subparsers.add_parser("figure", help="reproduce one of Figures 3-7")
    figure.add_argument("name", choices=sorted(FIGURES))
    figure.add_argument("--scale", default="tiny", choices=sorted(SCALES))
    figure.add_argument("--cities", nargs="*", default=["chengdu-like", "nyc-like"],
                        choices=sorted(CITY_BUILDERS))
    figure.add_argument("--algorithms", nargs="*", default=PAPER_ALGORITHMS,
                        type=_algorithm_name)
    figure.add_argument("--seed", type=int, default=2018)
    figure.add_argument("--output", type=Path, default=None,
                        help="write the raw series to this path (.json, .csv or .md)")

    datasets = subparsers.add_parser("datasets", help="print Table 4 / Table 5 of the paper")
    datasets.add_argument("--scale", default="small", choices=sorted(SCALES))
    datasets.add_argument("--seed", type=int, default=2018)

    ingest = subparsers.add_parser(
        "ingest",
        help="normalise a real GeoJSON/CSV road extract into the network schema",
    )
    ingest.add_argument("input", type=Path,
                        help="road extract: .geojson/.json FeatureCollection or .csv "
                             "edge list, optionally .gz-compressed")
    ingest.add_argument("--nodes", type=Path, default=None,
                        help="node table (id,x,y) for CSV edge lists referencing node ids")
    ingest.add_argument("--output", type=Path, default=None,
                        help="write the normalised network as JSON (.json or .json.gz)")
    ingest.add_argument("--name", default=None, help="network name (default: file stem)")
    ingest.add_argument("--snap-metres", type=float, default=1.0,
                        help="node-deduplication grid pitch in metres")
    ingest.add_argument("--speed-factor", type=float, default=0.8,
                        help="effective-speed fraction of the legal limit (paper: 0.8)")
    ingest.add_argument("--projection", default="auto",
                        choices=["auto", "geographic", "planar"],
                        help="coordinate handling: detect lon/lat, force the local "
                             "planar projection, or pass planar input through")
    ingest.add_argument("--keep-all-components", action="store_true",
                        help="skip largest-connected-component extraction")

    preprocess = subparsers.add_parser(
        "preprocess",
        help="build content-addressed distance-backend artifacts for a city",
    )
    preprocess.add_argument("--city", default="chengdu-like", type=_city_name)
    preprocess.add_argument("--seed", type=int, default=2018,
                            help="city seed (ignored by ingested file:/riverton cities)")
    preprocess.add_argument("--artifact-dir", type=Path, required=True,
                            help="root of the content-addressed artifact store")
    preprocess.add_argument("--backends", nargs="+", default=["apsp", "ch", "hub_labels"],
                            choices=["apsp", "ch", "hub_labels"],
                            help="which backends to preprocess")
    preprocess.add_argument("--list", action="store_true", dest="list_entries",
                            help="list the store's entries instead of building")

    subparsers.add_parser("algorithms", help="list every registered dispatch algorithm")

    scenarios = subparsers.add_parser(
        "scenarios",
        help="list or describe the declarative scenario presets",
    )
    scenarios.add_argument("name", nargs="?", default=None,
                           help="preset to describe (omit to list every preset)")
    scenarios.add_argument("--json", action="store_true", dest="as_json",
                           help="print the preset as a JSON scenario program")

    stress = subparsers.add_parser(
        "stress",
        help="sweep seeded random scenario programs against the dispatcher registry",
    )
    stress.add_argument("--scenarios", type=int, default=30,
                        help="number of fuzzed scenarios to generate")
    stress.add_argument("--seed", type=int, default=2018,
                        help="master seed; the whole sweep is a pure function of it")
    stress.add_argument("--reruns", type=int, default=1,
                        help="extra reruns per combination for the determinism check")
    stress.add_argument("--dispatchers", nargs="+", default=None, type=_algorithm_name,
                        help="dispatcher names to sweep (default: every registry "
                             "algorithm plus sharded: and cluster: variants)")
    stress.add_argument("--shards", type=int, default=2,
                        help="shard count for sharded:/cluster: combinations")
    stress.add_argument("--output", type=Path, default=None,
                        help="write the full stress report as JSON")
    stress.add_argument("--quiet", action="store_true",
                        help="suppress per-combination progress lines")

    return parser


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--city", default="chengdu-like", type=_city_name,
                        help="registry city or 'file:<path>' to ingest a "
                             "GeoJSON/CSV road extract")
    parser.add_argument("--artifact-dir", type=Path, default=None,
                        help="root of the content-addressed preprocessing store; "
                             "precomputed oracle backends load from / save to it")
    parser.add_argument("--workers", type=int, default=40)
    parser.add_argument("--requests", type=int, default=250)
    parser.add_argument("--capacity", type=int, default=4)
    parser.add_argument("--deadline-minutes", type=float, default=10.0)
    parser.add_argument("--penalty-factor", type=float, default=10.0)
    parser.add_argument("--alpha", type=float, default=1.0)
    parser.add_argument("--grid-km", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--oracle-backend", default="auto",
                        choices=["auto", "apsp", "ch", "hub_labels", "dijkstra"],
                        help="distance backend: dense all-pairs matrix, contraction "
                             "hierarchy, flat hub labels, or cached Dijkstra; 'auto' "
                             "picks by network size (all are value-exact)")
    parser.add_argument("--cancellation-rate", type=float, default=0.0,
                        help="per-request rider-cancellation probability (event engine only)")
    parser.add_argument("--shift-hours", type=float, default=0.0,
                        help="staggered worker duty-window length in hours; 0 = always on "
                             "(event engine only)")
    parser.add_argument("--engine", default="event", choices=sorted(ENGINES),
                        help="simulation engine: the event-driven kernel (default) or the "
                             "legacy request-stream loop")
    parser.add_argument("--shards", type=int, default=0,
                        help="spatial shards for the sharded dispatcher; 0 = unsharded, "
                             "1 = sharded wrapper reproducing the unsharded run exactly")
    parser.add_argument("--shard-strategy", default="grid", choices=sorted(STRATEGIES),
                        help="spatial partitioning strategy of the sharded dispatcher")
    parser.add_argument("--escalate-k", type=int, default=2,
                        help="nearest neighbouring shards tried after the origin shard")


def _scenario_from_args(args: argparse.Namespace) -> ScenarioConfig:
    return ScenarioConfig(
        city=args.city,
        num_workers=args.workers,
        num_requests=args.requests,
        worker_capacity=args.capacity,
        deadline_minutes=args.deadline_minutes,
        penalty_factor=args.penalty_factor,
        alpha=args.alpha,
        grid_km=args.grid_km,
        seed=args.seed,
        oracle_backend=getattr(args, "oracle_backend", None),
        cancellation_rate=args.cancellation_rate,
        shift_hours=args.shift_hours,
        oracle_artifact_dir=(
            str(args.artifact_dir) if getattr(args, "artifact_dir", None) is not None else None
        ),
    )


def _dispatcher_spec_from_args(
    args: argparse.Namespace, algorithm: str = "pruneGreedyDP"
) -> DispatcherSpec:
    """The structured dispatcher selection implied by the scenario flags."""
    spec = DispatcherSpec.parse(algorithm)
    return dataclasses.replace(
        spec,
        sharded=spec.sharded or args.shards > 0,
        num_shards=max(args.shards, 1),
        shard_strategy=args.shard_strategy,
        shard_escalate_k=args.escalate_k,
    ).validate()


def _platform_from_args(
    args: argparse.Namespace, algorithm: str = "pruneGreedyDP"
) -> PlatformSpec:
    """One declarative PlatformSpec for the scenario + dispatcher flags."""
    return PlatformSpec(
        scenario=_scenario_from_args(args),
        dispatcher=_dispatcher_spec_from_args(args, algorithm),
        engine=args.engine,
        cluster=getattr(args, "cluster", False),
        cluster_max_pending=getattr(args, "max_pending", 1024),
        cluster_retry_attempts=getattr(args, "retry_attempts", 3),
        cluster_max_restarts=getattr(args, "max_restarts", 2),
        cluster_restart_delay_s=getattr(args, "restart_delay", 0.0),
    ).validate()


def _sharded_names(args: argparse.Namespace, names: Sequence[str]) -> list[str]:
    """Prefix algorithm names with the sharded wrapper when --shards is set."""
    if args.shards <= 0:
        return list(names)
    return [f"sharded:{name}" for name in names]


# ------------------------------------------------------------------- commands


def command_simulate(args: argparse.Namespace) -> int:
    if args.spec is not None:
        spec = PlatformSpec.from_file(args.spec)
    else:
        spec = _platform_from_args(args, args.algorithm)
    result = MatchingService.from_spec(spec).replay()
    print(format_results([result]))
    return 0


def command_serve_replay(args: argparse.Namespace) -> int:
    if args.spec is not None:
        spec = PlatformSpec.from_file(args.spec)
    else:
        spec = _platform_from_args(args, args.algorithm)
    service = MatchingService.from_spec(spec)
    requests = service.instance.requests
    if args.max_requests is not None:
        requests = requests[: args.max_requests]
    print(
        f"serving {len(requests)} requests through {service.dispatcher.name} "
        f"on {spec.scenario.city} ({spec.engine} engine)"
    )
    on_decision = None if args.quiet else (lambda decision: print(decision.describe()))
    result = service.replay(requests, on_decision=on_decision)
    snapshot = service.snapshot()
    print(
        f"\nsession closed at t={snapshot.clock:.1f}s: "
        f"{snapshot.served} served / {snapshot.rejected} rejected"
        + (f" / {snapshot.cancelled} cancelled" if snapshot.cancelled else "")
    )
    print(format_results([result]))
    return 0


def command_algorithms(args: argparse.Namespace) -> int:
    print("registered dispatch algorithms:")
    for name in list_dispatchers():
        print(f"  {name}")
    print(
        "\nany algorithm can be wrapped in the sharded dispatcher as "
        "'sharded:<name>' (or with --shards K on scenario commands), or run "
        "on shard-worker processes as 'cluster:<name>' (serve-replay "
        "--cluster)."
    )
    return 0


def command_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import get_preset, list_presets

    if args.name is None:
        print("scenario presets:")
        for name in list_presets():
            preset = get_preset(name)
            shape = ", ".join(
                f"{len(components)} {kind}"
                for kind, components in (
                    ("fleet classes", preset.fleet),
                    ("workload classes", preset.workload),
                    ("surges", preset.surges),
                    ("disruptions", preset.disruptions),
                )
                if components
            ) or "empty (plain base config)"
            print(f"  {name:<18} {shape}")
            print(f"  {'':<18} {preset.description}")
        print(
            "\ndescribe one with 'repro scenarios <name>'; run one with "
            "repro.scenarios.run_program(PlatformSpec(...), get_preset(name))."
        )
        return 0
    try:
        preset = get_preset(args.name)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.as_json:
        print(preset.to_json(), end="")
        return 0
    print(f"{preset.name}: {preset.description}")
    for kind, components in (
        ("fleet classes", preset.fleet),
        ("workload classes", preset.workload),
        ("surges", preset.surges),
        ("disruptions", preset.disruptions),
    ):
        if not components:
            continue
        print(f"  {kind}:")
        for component in components:
            print(f"    {component}")
    if preset.is_empty:
        print("  (empty program: compiles to exactly the base config)")
    return 0


def command_stress(args: argparse.Namespace) -> int:
    from repro.scenarios import run_stress

    progress = None if args.quiet else lambda line: print(line, file=sys.stderr)
    report = run_stress(
        args.scenarios,
        args.dispatchers,
        master_seed=args.seed,
        reruns=args.reruns,
        num_shards=args.shards,
        progress=progress,
    )
    print(
        f"stress sweep: {args.scenarios} scenarios x {len(report.dispatchers)} "
        f"dispatchers (seed {args.seed}) -> "
        f"{len(report.crashes)} crashes, {len(report.nondeterministic)} "
        f"non-deterministic, {len(report.violations)} invariant violations, "
        f"{len(report.cliffs)} served-rate cliffs"
    )
    for crash in report.crashes:
        print(f"  CRASH scenario {crash['scenario']} x {crash['dispatcher']}: "
              f"{crash['error']}")
    for entry in report.nondeterministic:
        print(f"  NONDETERMINISTIC scenario {entry['scenario']} x {entry['dispatcher']}")
    for violation in report.violations:
        print(f"  VIOLATION scenario {violation['scenario']} x "
              f"{violation['dispatcher']}: {violation['kind']}")
    for cliff in report.cliffs:
        print(f"  cliff: scenario {cliff['scenario']} x {cliff['dispatcher']} served "
              f"{cliff['served_rate']:.2f} vs best {cliff['best_rate']:.2f}")
    if args.output is not None:
        args.output.write_text(json.dumps(report.to_dict(), indent=2) + "\n",
                               encoding="utf-8")
        print(f"report written to {args.output}")
    return 0 if report.ok else 1


def command_compare(args: argparse.Namespace) -> int:
    config = _scenario_from_args(args)
    runner = ScenarioRunner(platform=_platform_from_args(args))
    results = runner.compare(config, _sharded_names(args, args.algorithms))
    print(format_results(results))
    return 0


def command_sweep(args: argparse.Namespace) -> int:
    config = _scenario_from_args(args)
    values = [_coerce_sweep_value(args.parameter, raw) for raw in args.values]
    runner = ParallelSweepRunner(platform=_platform_from_args(args), jobs=args.jobs)
    points = runner.sweep(
        args.parameter, values, config, _sharded_names(args, args.algorithms),
        replicates=args.replicates,
    )
    rows: list[dict] = []
    for point in points:
        label = f"-- {args.parameter} = {point.value}"
        if args.replicates > 1:
            label += f" (replicate {point.replicate})"
        print(label + " --")
        print(format_results(point.results))
        for result in point.results:
            row = result.as_row()
            row.update({
                "parameter": args.parameter,
                "value": point.value,
                "replicate": point.replicate,
            })
            rows.append(row)
    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(json.dumps(rows, indent=2) + "\n", encoding="utf-8")
        print(f"\nwritten: {args.output}")
    return 0


def _coerce_sweep_value(parameter: str, raw: str) -> float | int | str:
    """Coerce a CLI sweep value to the ScenarioConfig field's type."""
    for field in dataclasses.fields(ScenarioConfig):
        if field.name != parameter:
            continue
        if field.type in ("int", "int | None"):
            return int(raw)
        if field.type == "float":
            return float(raw)
        if field.type == "bool":
            lowered = raw.strip().lower()
            if lowered in ("true", "1", "yes"):
                return True
            if lowered in ("false", "0", "no"):
                return False
            raise ValueError(f"invalid boolean sweep value {raw!r} for {parameter!r}")
        return raw
    raise ValueError(f"unknown scenario parameter {parameter!r}")


def command_figure(args: argparse.Namespace) -> int:
    experiment = ExperimentConfig(
        cities=tuple(args.cities),
        algorithms=tuple(args.algorithms),
        scale=args.scale,
        seed=args.seed,
    )
    figure = FIGURES[args.name](experiment, ScenarioRunner())
    print(format_figure(figure))
    if args.output is not None:
        _write_figure(figure, args.output)
        print(f"\nwritten: {args.output}")
    return 0


def _write_figure(figure, output: Path) -> None:
    suffix = output.suffix.lower()
    if suffix == ".json":
        save_figure_json(figure, output)
    elif suffix == ".csv":
        save_figure_csv(figure, output)
    elif suffix in (".md", ".markdown"):
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(figure_to_markdown(figure), encoding="utf-8")
    else:
        raise ValueError(f"unsupported output format {suffix!r}; use .json, .csv or .md")


def command_datasets(args: argparse.Namespace) -> int:
    experiment = ExperimentConfig(scale=args.scale, seed=args.seed)
    print("Table 4 — dataset statistics (synthetic stand-ins)")
    print(format_table(table4_datasets(experiment)))
    print()
    print("Table 5 — parameter settings")
    print(format_table(table5_parameters(experiment)))
    return 0


def command_ingest(args: argparse.Namespace) -> int:
    from repro.ingest import IngestError, IngestOptions, ingest_file
    from repro.artifacts import network_content_hash
    from repro.network.io import save_network

    try:
        options = IngestOptions(
            snap_metres=args.snap_metres,
            speed_factor=args.speed_factor,
            projection=args.projection,
            keep_all_components=args.keep_all_components,
        )
        network, report = ingest_file(
            args.input, name=args.name, options=options, nodes_path=args.nodes
        )
    except IngestError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"ingested {args.input} -> network {network.name!r}")
    for line in report.lines():
        print(f"  {line}")
    print(f"  content hash:        {network_content_hash(network)}")
    if args.output is not None:
        save_network(network, args.output)
        print(f"written: {args.output}")
    return 0


def command_preprocess(args: argparse.Namespace) -> int:
    import time

    from repro.artifacts import ArtifactStore, network_content_hash
    from repro.workloads.scenarios import build_network

    store = ArtifactStore(args.artifact_dir)
    if args.list_entries:
        entries = store.entries()
        if not entries:
            print(f"artifact store {args.artifact_dir} is empty")
            return 0
        for entry in entries:
            net = entry.get("network", {})
            print(
                f"{entry.get('content_hash', '?')[:12]}  "
                f"{net.get('name', '?')} "
                f"({net.get('num_vertices', '?')} vertices, "
                f"{net.get('num_edges', '?')} edges)"
            )
            for name, info in sorted(entry.get("backends", {}).items()):
                print(f"    {name}: built in {info.get('build_seconds', 0.0):.3f}s")
        return 0

    config = ScenarioConfig(city=args.city, seed=args.seed)
    network = build_network(config)
    content_hash = network_content_hash(network)
    print(
        f"preprocessing {args.city} ({network.num_vertices} vertices, "
        f"{network.num_edges} edges; hash {content_hash[:12]}) -> {args.artifact_dir}"
    )
    for name in args.backends:
        started = time.perf_counter()
        _backend, loaded = store.load_or_build(name, network, None, content_hash=content_hash)
        elapsed = time.perf_counter() - started
        action = "loaded from store" if loaded else "built and saved"
        print(f"  {name}: {action} in {elapsed:.3f}s")
    return 0


_COMMANDS = {
    "simulate": command_simulate,
    "serve-replay": command_serve_replay,
    "compare": command_compare,
    "sweep": command_sweep,
    "figure": command_figure,
    "datasets": command_datasets,
    "ingest": command_ingest,
    "preprocess": command_preprocess,
    "algorithms": command_algorithms,
    "scenarios": command_scenarios,
    "stress": command_stress,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
