"""GreedyDP and pruneGreedyDP (Section 5, Algorithms 4-5 of the paper).

Both algorithms process each request in two phases:

1. **Decision phase** (Algorithm 4): compute, for every candidate worker, the
   Euclidean lower bound ``LB_{Δ*}`` of the minimal insertion cost using a
   single exact distance query (``L = dis(o_r, d_r)``). If even
   ``alpha * min LB`` exceeds the request's penalty, serving cannot pay off and
   the request is rejected outright.
2. **Planning phase** (Algorithm 5): insert the request into the route of the
   worker with the minimal actual increased cost, found with the linear DP
   insertion.

``pruneGreedyDP`` additionally sorts the candidates by their lower bound and
stops scanning as soon as the best actual increase found so far is below the
next candidate's lower bound (Lemma 8, *pre-ordered pruning*) — this is what
saves the billions of shortest-distance queries reported in Section 6.
``GreedyDP`` is the ablation without the pruning rule: it evaluates the exact
insertion for every candidate.
"""

from __future__ import annotations

import math

from repro.core.insertion.base import InsertionOperator
from repro.core.insertion.linear_dp import LinearDPInsertion
from repro.core.insertion.lower_bound import euclidean_insertion_lower_bound
from repro.core.types import Request
from repro.dispatch.base import Dispatcher, DispatcherConfig, DispatchOutcome

INFINITY = math.inf


class _GreedyDPBase(Dispatcher):
    """Shared decision + planning machinery of GreedyDP / pruneGreedyDP."""

    #: whether Lemma 8 pre-ordered pruning is applied in the planning phase
    use_pruning: bool = False

    def __init__(
        self,
        config: DispatcherConfig | None = None,
        insertion: InsertionOperator | None = None,
    ) -> None:
        super().__init__(config)
        self.insertion = insertion or LinearDPInsertion()

    # ------------------------------------------------------------- dispatch

    def dispatch(self, request: Request, now: float) -> DispatchOutcome:
        assert self.fleet is not None and self.oracle is not None and self.instance is not None
        self.sync_grid()
        alpha = self.instance.objective.alpha

        candidate_ids = self.candidate_worker_ids(request, now)
        if not candidate_ids:
            return DispatchOutcome(request=request, served=False, decision_rejected=True)

        # ---------------- decision phase (Algorithm 4)
        direct = self.oracle.distance(request.origin, request.destination)
        lower_bounds: list[tuple[float, int]] = []
        for worker_id in candidate_ids:
            state = self.fleet.state_of(worker_id)
            state.route.remember_direct_distance(request, direct)
            bound = euclidean_insertion_lower_bound(state.route, request, self.oracle, direct)
            if bound < INFINITY:
                lower_bounds.append((bound, worker_id))

        if not lower_bounds:
            return DispatchOutcome(
                request=request,
                served=False,
                candidates_considered=len(candidate_ids),
                decision_rejected=True,
            )
        min_lower_bound = min(bound for bound, _ in lower_bounds)
        if request.penalty < alpha * min_lower_bound:
            return DispatchOutcome(
                request=request,
                served=False,
                candidates_considered=len(candidate_ids),
                decision_rejected=True,
            )

        # ---------------- planning phase (Algorithm 5, lines 5-11)
        if self.use_pruning:
            lower_bounds.sort(key=lambda item: item[0])

        best_delta = INFINITY
        best_worker_id: int | None = None
        best_route = None
        insertions = 0
        for bound, worker_id in lower_bounds:
            if self.use_pruning and best_delta < bound:
                break  # Lemma 8: later candidates cannot beat the current best
            state = self.fleet.state_of(worker_id)
            result = self.insertion.best_insertion(state.route, request, self.oracle)
            insertions += 1
            if result.feasible and result.delta < best_delta - 1e-9:
                best_delta = result.delta
                best_worker_id = worker_id
                best_route = state.route.with_insertion(
                    request, result.pickup_index, result.dropoff_index, self.oracle
                )

        if best_worker_id is None or best_route is None:
            return DispatchOutcome(
                request=request,
                served=False,
                candidates_considered=len(candidate_ids),
                insertions_evaluated=insertions,
            )

        if self.config.reject_unprofitable and alpha * best_delta > request.penalty:
            return DispatchOutcome(
                request=request,
                served=False,
                candidates_considered=len(candidate_ids),
                insertions_evaluated=insertions,
                decision_rejected=True,
            )

        state = self.fleet.state_of(best_worker_id)
        state.adopt_route(best_route, request=request)
        self.grid.update(best_worker_id, state.position)
        return DispatchOutcome(
            request=request,
            served=True,
            worker_id=best_worker_id,
            increased_cost=best_delta,
            candidates_considered=len(candidate_ids),
            insertions_evaluated=insertions,
        )


class GreedyDP(_GreedyDPBase):
    """GreedyDP: linear DP insertion over *all* candidates (no Lemma 8 pruning)."""

    name = "GreedyDP"
    use_pruning = False


class PruneGreedyDP(_GreedyDPBase):
    """pruneGreedyDP: decision phase + pre-ordered pruning + linear DP insertion."""

    name = "pruneGreedyDP"
    use_pruning = True
