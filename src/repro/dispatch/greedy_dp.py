"""GreedyDP and pruneGreedyDP (Section 5, Algorithms 4-5 of the paper).

Both algorithms process each request in two phases:

1. **Decision phase** (Algorithm 4): compute, for every candidate worker, the
   Euclidean lower bound ``LB_{Δ*}`` of the minimal insertion cost using a
   single exact distance query (``L = dis(o_r, d_r)``). If even
   ``alpha * min LB`` exceeds the request's penalty, serving cannot pay off and
   the request is rejected outright.
2. **Planning phase** (Algorithm 5): insert the request into the route of the
   worker with the minimal actual increased cost, found with the linear DP
   insertion.

``pruneGreedyDP`` additionally sorts the candidates by their lower bound and
stops scanning as soon as the best actual increase found so far is below the
next candidate's lower bound (Lemma 8, *pre-ordered pruning*) — this is what
saves the billions of shortest-distance queries reported in Section 6.
``GreedyDP`` is the ablation without the pruning rule: it evaluates the exact
insertion for every candidate.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.insertion.base import InsertionOperator
from repro.core.insertion.linear_dp import LinearDPInsertion
from repro.core.insertion.lower_bound import (
    euclidean_idle_lower_bounds,
    euclidean_insertion_lower_bound,
    euclidean_insertion_lower_bounds,
)
from repro.core.types import Request
from repro.dispatch.base import Dispatcher, DispatcherConfig, DispatchOutcome

INFINITY = math.inf


class _GreedyDPBase(Dispatcher):
    """Shared decision + planning machinery of GreedyDP / pruneGreedyDP."""

    #: whether Lemma 8 pre-ordered pruning is applied in the planning phase
    use_pruning: bool = False

    def __init__(
        self,
        config: DispatcherConfig | None = None,
        insertion: InsertionOperator | None = None,
        vectorized: bool = True,
    ) -> None:
        """``vectorized`` selects the array-native decision phase (one batched
        lower-bound reduction over all candidates, argsorted for the Lemma 8
        scan); ``False`` keeps the scalar per-candidate walk — both produce
        identical outcomes and exact-query counters, so the scalar path serves
        as the equivalence baseline of ``benchmarks/bench_hot_path.py``."""
        super().__init__(config)
        self.insertion = insertion or LinearDPInsertion()
        self.vectorized = vectorized
        #: smallest worker capacity in the fleet (set at setup); requests at
        #: or below it can skip the per-candidate capacity mask
        self._min_capacity: int | None = None

    def setup(self, instance, fleet) -> None:  # noqa: D102 - documented on base
        super().setup(instance, fleet)
        self._min_capacity = min(
            (worker.capacity for worker in instance.workers), default=None
        )

    # ------------------------------------------------------------- dispatch

    def dispatch(self, request: Request, now: float) -> DispatchOutcome:
        assert self.fleet is not None and self.oracle is not None and self.instance is not None
        self.sync_grid()
        alpha = self.instance.objective.alpha

        candidate_ids = self.candidate_worker_ids(request, now)
        if not candidate_ids:
            return DispatchOutcome(request=request, served=False, decision_rejected=True)

        # ---------------- decision phase (Algorithm 4)
        direct = self.oracle.distance(request.origin, request.destination)
        if self.vectorized:
            lower_bounds = self._decision_bounds_batched(request, candidate_ids, direct)
        else:
            lower_bounds = self._decision_bounds_scalar(request, candidate_ids, direct)

        if not lower_bounds:
            return DispatchOutcome(
                request=request,
                served=False,
                candidates_considered=len(candidate_ids),
                decision_rejected=True,
            )
        min_lower_bound = min(bound for bound, _ in lower_bounds)
        if request.penalty < alpha * min_lower_bound:
            return DispatchOutcome(
                request=request,
                served=False,
                candidates_considered=len(candidate_ids),
                decision_rejected=True,
            )

        # ---------------- planning phase (Algorithm 5, lines 5-11)
        if self.use_pruning and not self.vectorized:
            # the batched path pre-orders via argsort; the scalar walk sorts here
            lower_bounds.sort(key=lambda item: item[0])

        best_delta = INFINITY
        best_worker_id: int | None = None
        best_route = None
        insertions = 0
        for bound, worker_id in lower_bounds:
            if self.use_pruning and best_delta < bound:
                break  # Lemma 8: later candidates cannot beat the current best
            state = self.fleet.state_of(worker_id)
            # the batched decision phase defers seeding L = dis(o_r, d_r) to
            # the candidates actually evaluated (idempotent for the scalar
            # walk, which seeded every candidate already)
            state.route.remember_direct_distance(request, direct)
            result = self.insertion.best_insertion(state.route, request, self.oracle)
            insertions += 1
            if result.feasible and result.delta < best_delta - 1e-9:
                best_delta = result.delta
                best_worker_id = worker_id
                best_route = state.route.with_insertion(
                    request, result.pickup_index, result.dropoff_index, self.oracle
                )

        if best_worker_id is None or best_route is None:
            return DispatchOutcome(
                request=request,
                served=False,
                candidates_considered=len(candidate_ids),
                insertions_evaluated=insertions,
            )

        if self.config.reject_unprofitable and alpha * best_delta > request.penalty:
            return DispatchOutcome(
                request=request,
                served=False,
                candidates_considered=len(candidate_ids),
                insertions_evaluated=insertions,
                decision_rejected=True,
            )

        state = self.fleet.state_of(best_worker_id)
        state.adopt_route(best_route, request=request)
        self.grid.update(best_worker_id, state.position)
        return DispatchOutcome(
            request=request,
            served=True,
            worker_id=best_worker_id,
            increased_cost=best_delta,
            candidates_considered=len(candidate_ids),
            insertions_evaluated=insertions,
        )

    # ------------------------------------------------------- decision phase

    def _decision_bounds_batched(
        self, request: Request, candidate_ids: list[int], direct: float
    ) -> list[tuple[float, int]]:
        """All candidate lower bounds as one numpy reduction (Algorithm 4).

        Idle candidates are answered straight from the fleet's idle snapshot
        (an idle worker waits in place — its materialisation is a pure clock
        bump, so the closed-form empty-route bound needs no state touch at
        all); busy candidates are materialised and fed through the padded-
        matrix DP. One batched oracle pass per group answers every bound;
        under Lemma 8 a single stable argsort pre-orders the finite bounds
        for the pruning scan. Values, ordering and tie-breaks match the
        scalar walk exactly.

        The batched path also needs no per-route L seeding (the planning loop
        seeds the few candidates it actually evaluates), which keeps every
        route's direct-distance memo — copied on each advance — proportional
        to served work, not to candidate-set size.
        """
        fleet = self.fleet
        assert fleet is not None and self.oracle is not None
        if not (fleet.lazy and fleet.materialise_fast_path):
            # eager fleets may hold idle routes materialised at times other
            # than ``now``; take the uniform route-based path
            routes = [state.route for state in fleet.states_of(candidate_ids)]
            bounds = euclidean_insertion_lower_bounds(routes, request, self.oracle, direct)
            return self._order_bounds(bounds, candidate_ids)

        candidate_array = np.asarray(candidate_ids, dtype=np.int64)
        bounds = np.full(candidate_array.size, INFINITY, dtype=np.float64)
        idle_mask, idle_origins, busy_ids_array = fleet.idle_partition(candidate_array)
        busy_ids = busy_ids_array.tolist()
        busy_mask = ~idle_mask
        if idle_origins.size:
            # an idle worker's materialisation would set arr[0] to the fleet
            # clock, which is exactly ``now`` during a dispatch; the capacity
            # mask is skipped when every fleet capacity fits the request
            capacities = None
            if not (self._min_capacity is not None and request.capacity <= self._min_capacity):
                idle = fleet.idle_snapshot
                capacities = [
                    idle[worker_id][1]
                    for worker_id in candidate_array[idle_mask].tolist()
                ]
            bounds[idle_mask] = euclidean_idle_lower_bounds(
                idle_origins, fleet.clock, request, self.oracle, direct,
                capacities=capacities,
            )
        if busy_ids:
            routes = [state.route for state in fleet.states_of(busy_ids)]
            bounds[busy_mask] = euclidean_insertion_lower_bounds(
                routes, request, self.oracle, direct
            )
        return self._order_bounds(bounds, candidate_ids)

    def _order_bounds(
        self, bounds: np.ndarray, candidate_ids: list[int]
    ) -> list[tuple[float, int]]:
        """Filter the finite bounds and argsort them for the Lemma 8 scan."""
        finite = np.flatnonzero(bounds < INFINITY)
        if self.use_pruning and finite.size:
            finite = finite[np.argsort(bounds[finite], kind="stable")]
        values = bounds.tolist()
        return [(values[index], candidate_ids[index]) for index in finite.tolist()]

    def _decision_bounds_scalar(
        self, request: Request, candidate_ids: list[int], direct: float
    ) -> list[tuple[float, int]]:
        """The per-candidate scalar walk (equivalence baseline)."""
        assert self.fleet is not None and self.oracle is not None
        lower_bounds: list[tuple[float, int]] = []
        for worker_id in candidate_ids:
            state = self.fleet.state_of(worker_id)
            state.route.remember_direct_distance(request, direct)
            bound = euclidean_insertion_lower_bound(state.route, request, self.oracle, direct)
            if bound < INFINITY:
                lower_bounds.append((bound, worker_id))
        return lower_bounds


class GreedyDP(_GreedyDPBase):
    """GreedyDP: linear DP insertion over *all* candidates (no Lemma 8 pruning)."""

    name = "GreedyDP"
    use_pruning = False


class PruneGreedyDP(_GreedyDPBase):
    """pruneGreedyDP: decision phase + pre-ordered pruning + linear DP insertion."""

    name = "pruneGreedyDP"
    use_pruning = True
