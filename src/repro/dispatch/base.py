"""Dispatcher interface shared by every algorithm of the evaluation.

A dispatcher receives requests one by one (in release order) from the
simulation kernel and either assigns each request to a worker — by updating
that worker's planned route — or rejects it. Batch-style algorithms defer
requests and assign them when :meth:`Dispatcher.flush` is called; the batch
protocol (:meth:`Dispatcher.next_flush_time`, :meth:`Dispatcher.flush`,
:meth:`Dispatcher.cancel`) is part of the base interface so the simulation
kernel never has to probe for optional attributes. :class:`BatchDispatcher`
implements the deferral plumbing once and additionally *schedules its own*
:class:`~repro.simulation.events.BatchFlush` events when bound to an event
engine (:meth:`Dispatcher.bind_flush_scheduler`).

Every dispatcher reports a :class:`DispatchOutcome` per request so the metrics
collector can compute the unified cost, served rate and per-request work
(candidates considered, insertions evaluated).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, ClassVar

from repro.core.instance import URPSMInstance
from repro.core.types import Request
from repro.index.grid import GridIndex
from repro.network.oracle import DistanceOracle, OracleCounters

if TYPE_CHECKING:  # imported lazily to avoid a dispatch <-> simulation cycle
    from repro.simulation.fleet import FleetState


@dataclass(frozen=True, slots=True)
class DispatchOutcome:
    """What happened to one request."""

    request: Request
    served: bool
    worker_id: int | None = None
    increased_cost: float = 0.0
    candidates_considered: int = 0
    insertions_evaluated: int = 0
    decision_rejected: bool = False
    """True when the decision phase rejected the request before planning."""
    rejection_reason: str | None = None
    """Explicit rejection code overriding the derived reason ladder — set by
    admission control (``"saturated"``) when a request is rejected without
    ever reaching a planning phase."""


@dataclass
class DispatcherConfig:
    """Knobs shared by all dispatchers (Table 5 of the paper).

    Attributes:
        grid_cell_metres: grid-index cell size ``g`` in metres.
        reject_unprofitable: after planning, reject the request anyway if
            serving it increases the unified cost more than its penalty.
        batch_interval: batching window in simulated seconds (used only by
            batch-style dispatchers).
        kinetic_node_budget: search-node budget per schedule optimisation of
            the kinetic baseline (its search is exponential by design; the
            budget mirrors a wall-clock cap).
        num_shards: number of spatial shards of the sharded dispatcher
            (``K``; 1 reproduces the unsharded inner algorithm exactly).
        shard_strategy: partitioning strategy of the sharded dispatcher
            (see :data:`repro.sharding.partitioner.STRATEGIES`).
        shard_escalate_k: how many nearest neighbouring shards a request
            tries after its origin shard, before falling back globally.
        shard_oracle_backend: distance backend of the per-shard oracles of
            the sharded dispatcher — ``"shared"`` (default: every shard
            queries the instance's global oracle, bit-exact with the
            unsharded run), a backend name (``"apsp"``, ``"ch"``,
            ``"hub_labels"``, ``"dijkstra"``), or ``"auto"`` to pick a
            locality-appropriate backend from the full network size (the
            graph the index is built on) and each shard's expected query
            share. Shards resolving to the same backend share one oracle
            build; all backends stay value-exact (they answer over the full
            network), so only counter attribution moves into the shards.
    """

    grid_cell_metres: float = 2000.0
    reject_unprofitable: bool = False
    batch_interval: float = 6.0
    kinetic_node_budget: int = 20_000
    num_shards: int = 1
    shard_strategy: str = "grid"
    shard_escalate_k: int = 2
    shard_oracle_backend: str = "shared"


class Dispatcher(abc.ABC):
    """Base class of all online route-planning algorithms."""

    #: short name used in benchmark tables ("pruneGreedyDP", "tshare", ...)
    name: str = "dispatcher"

    #: dispatchers whose candidate search is *lossy* (it may discard feasible
    #: workers by design, like tshare's single-side cell walk) set this so the
    #: event kernel materialises the whole fleet before every interaction —
    #: lazy advancement is only transparent to admissible candidate filters.
    requires_exact_positions: ClassVar[bool] = False

    #: whether the dispatcher can absorb a live road-network mutation via
    #: :meth:`apply_network_update`. All built-in dispatchers can: in-process
    #: ones read the live network directly, and the cluster dispatcher
    #: broadcasts the mutations to its worker replicas.
    supports_network_updates: ClassVar[bool] = True

    def __init__(self, config: DispatcherConfig | None = None) -> None:
        self.config = config or DispatcherConfig()
        self.instance: URPSMInstance | None = None
        self.fleet: "FleetState | None" = None
        self.oracle: DistanceOracle | None = None
        self.grid: GridIndex | None = None
        self._flush_scheduler: Callable[[float], None] | None = None
        #: optional precomputed vertex -> cell mapping handed to the grid
        #: index at setup; the sharded dispatcher shares one mapping across
        #: its K per-shard grids (same network, same cell size).
        self.shared_vertex_cells: dict | None = None

    # ------------------------------------------------------------- lifecycle

    def setup(self, instance: URPSMInstance, fleet: "FleetState") -> None:
        """Bind the dispatcher to a problem instance and a fleet.

        Subclasses overriding this must call ``super().setup(...)`` first.
        The oracle is taken from the fleet (view) when it exposes one — a
        shard fleet view may carry a shard-local oracle backend — and falls
        back to the instance's shared oracle (for a plain
        :class:`~repro.simulation.fleet.FleetState` the two are the same
        object).
        """
        self.instance = instance
        self.fleet = fleet
        self.oracle = getattr(fleet, "oracle", None) or instance.oracle
        self.grid = self._build_grid(instance)
        for state in fleet:
            self.grid.insert(state.worker.id, state.position)
        fleet.drain_moved()  # setup positions are now reflected in the grid

    def _build_grid(self, instance: URPSMInstance) -> GridIndex:
        """Build the worker grid index; overridden by tshare to build its variant."""
        return GridIndex(
            instance.network,
            self.config.grid_cell_metres,
            vertex_cells=self.shared_vertex_cells,
        )

    def oracle_counter_totals(self) -> "OracleCounters | None":
        """Complete oracle-counter totals, or ``None`` when the instance's
        oracle already counted everything.

        Dispatchers that route queries through additional oracles (the
        sharded dispatcher's per-shard backends) override this so the
        headline ``distance_queries``/``dijkstra_runs`` of the simulation
        result include that work instead of silently dropping it.
        """
        return None

    def notify_worker_added(self, worker_id: int) -> None:
        """A new worker joined the live fleet: index its position.

        Called by the engine / service facade after
        :meth:`~repro.simulation.fleet.FleetState.add_worker`. The base
        implementation inserts the worker into the grid index; the sharded
        dispatcher overrides this to bucket the worker into the shard
        containing its position.
        """
        if self.grid is not None and self.fleet is not None:
            self.grid.insert(worker_id, self.fleet.peek_state(worker_id).position)

    def notify_network_changed(self) -> None:
        """The road network was mutated mid-run (street closure/reopening).

        Called by the engine *after* the instance oracle has been refreshed
        against the new topology. The base implementation rebuilds the grid
        index (cell geometry and vertex bucketing can shift with the CSR
        layout) and re-inserts every worker at its current position; the
        sharded dispatcher additionally refreshes its shard-local oracles and
        forwards the notification to each inner dispatcher.

        The pending moved-set is deliberately left untouched: a later
        ``sync_grid`` re-updating a position that is already correct is
        harmless, while draining it here could swallow a move another grid
        still needs to see.
        """
        if self.instance is None or self.fleet is None:
            return
        self.grid = self._build_grid(self.instance)
        for state in self.fleet:
            self.grid.insert(state.worker.id, state.position)

    def apply_network_update(self, mutations, now: float) -> None:
        """Absorb a live network mutation batch applied at simulated ``now``.

        ``mutations`` is the :class:`~repro.network.graph.EdgeMutation`
        sequence recorded while the engine mutated the authoritative
        network; the engine calls this *after* refreshing the instance
        oracle and rebuilding routes. In-process dispatchers share the live
        network object, so the base implementation ignores the mutation
        records and just runs :meth:`notify_network_changed`. The cluster
        dispatcher overrides this to broadcast the mutations to its worker
        replicas under a barrier acknowledgement.
        """
        del mutations, now
        self.notify_network_changed()

    def bind_flush_scheduler(self, schedule: Callable[[float], None] | None) -> None:
        """Attach the event engine's flush scheduler (``None`` detaches).

        When bound, batch dispatchers push a
        :class:`~repro.simulation.events.BatchFlush` event the moment a new
        accumulation window opens instead of relying on the driver polling
        :meth:`next_flush_time`.
        """
        self._flush_scheduler = schedule

    # --------------------------------------------------------------- running

    @abc.abstractmethod
    def dispatch(self, request: Request, now: float) -> DispatchOutcome | None:
        """Handle one released request at simulation time ``now``.

        Returns the outcome, or ``None`` if the request was deferred (batch
        dispatchers); deferred requests must eventually be resolved by
        :meth:`flush`.
        """

    def flush(self, now: float) -> list[DispatchOutcome]:
        """Resolve any deferred requests (no-op for immediate dispatchers)."""
        return []

    def next_flush_time(self) -> float | None:
        """Absolute time of the next scheduled batch flush.

        ``None`` means nothing is pending — immediate dispatchers always
        return ``None``. Part of the base interface so simulation drivers never
        need ``getattr`` probing.
        """
        return None

    def cancel(self, request: Request) -> bool:
        """Forget a deferred request (rider cancellation before the flush).

        Returns ``True`` when the request was pending inside this dispatcher
        and has been dropped; immediate dispatchers hold no deferred requests
        and return ``False``.
        """
        return False

    # --------------------------------------------------------------- helpers

    def sync_grid(self) -> None:
        """Refresh the grid index with the fleet's materialised positions.

        With a lazy fleet only the workers that actually moved since the last
        sync are touched (the others' grid entries are already current); with
        an eager fleet every entry is rewritten, matching the seed behaviour
        even for callers that mutate routes behind the fleet's back.
        """
        assert self.grid is not None and self.fleet is not None
        if self.fleet.lazy:
            for worker_id in self.fleet.drain_moved():
                self.grid.update(worker_id, self.fleet.peek_state(worker_id).position)
            return
        for state in self.fleet:
            self.grid.update(state.worker.id, state.position)

    def candidate_worker_ids(self, request: Request, now: float) -> list[int]:
        """Workers that could possibly reach the request's origin in time.

        Uses the grid index with a Euclidean reachability radius derived from
        the remaining time budget and the maximum network speed, so no feasible
        worker is ever filtered out (the filter of Algorithm 5, line 3). Under
        lazy fleet advancement the radius is widened by the fleet's position
        staleness bound plus one grid cell, keeping the filter admissible when
        grid entries lag behind workers' true progress. Off-shift workers are
        excluded; the result is sorted by worker id so ties between equally
        good candidates break deterministically regardless of grid iteration
        order.
        """
        assert self.grid is not None and self.oracle is not None and self.fleet is not None
        budget_seconds = request.deadline - now
        if budget_seconds <= 0:
            return []
        network = self.oracle.network
        radius_metres = budget_seconds * network.max_speed
        slack_metres = self.fleet.position_slack_metres(network.max_speed)
        if slack_metres > 0.0:
            radius_metres += slack_metres + self.grid.geometry.cell_metres
        candidates = self.grid.members_near_vertex(request.origin, radius_metres)
        is_available = self.fleet.is_available
        available = [worker_id for worker_id in candidates if is_available(worker_id)]
        if not available:
            # degenerate grids (single cell) or stale entries: fall back to all
            available = [
                state.worker.id
                for state in self.fleet
                if self.fleet.is_available(state.worker.id)
            ]
        return sorted(available)

    def memory_estimate_bytes(self) -> int:
        """Memory footprint of the dispatcher's index structures."""
        return self.grid.memory_estimate_bytes() if self.grid is not None else 0

    def extra_metrics(self) -> dict[str, float]:
        """Dispatcher-specific metrics merged into ``SimulationResult.extra``.

        The simulation backends call this once at the end of a run; the
        sharded dispatcher reports its routing and per-shard counters here.
        """
        return {}

    @property
    def is_batched(self) -> bool:
        """Whether the dispatcher defers requests to periodic flushes."""
        return False


class BatchDispatcher(Dispatcher):
    """Base class of batch-style dispatchers.

    Implements the deferral protocol once: :meth:`dispatch` appends the
    request to the pending batch and opens an accumulation window of
    ``config.batch_interval`` seconds when none is open; :meth:`flush` hands
    the accumulated batch to :meth:`assign_batch`. When an event engine is
    bound via :meth:`Dispatcher.bind_flush_scheduler`, opening a window
    immediately schedules the matching
    :class:`~repro.simulation.events.BatchFlush` event.
    """

    def __init__(self, config: DispatcherConfig | None = None) -> None:
        super().__init__(config)
        self._pending: list[Request] = []
        self._next_flush: float | None = None

    # ------------------------------------------------------------ interface

    @property
    def is_batched(self) -> bool:
        return True

    def next_flush_time(self) -> float | None:
        """Time of the next scheduled flush, or ``None`` when nothing is pending."""
        return self._next_flush

    @property
    def pending_requests(self) -> list[Request]:
        """Requests deferred into the currently open batch window."""
        return list(self._pending)

    def dispatch(self, request: Request, now: float) -> DispatchOutcome | None:
        """Defer the request to the current batch; returns ``None``."""
        self.defer(request, now)
        return None

    def defer(self, request: Request, now: float) -> None:
        """Append ``request`` to the pending batch, opening a window if needed."""
        if self._next_flush is None:
            self._next_flush = now + self.config.batch_interval
            if self._flush_scheduler is not None:
                self._flush_scheduler(self._next_flush)
        self._pending.append(request)

    def cancel(self, request: Request) -> bool:
        """Drop a deferred request from the pending batch."""
        for index, pending in enumerate(self._pending):
            if pending.id == request.id:
                del self._pending[index]
                return True
        return False

    def flush(self, now: float) -> list[DispatchOutcome]:
        """Assign the accumulated batch via :meth:`assign_batch`.

        Subclasses that want to carry a request over into the next window must
        re-defer it through :meth:`defer` from inside :meth:`assign_batch` —
        the window is closed before the batch is handed over, so ``defer``
        opens (and schedules) the next one.
        """
        self._next_flush = None
        if not self._pending:
            return []
        batch, self._pending = self._pending, []
        return self.assign_batch(batch, now)

    # ----------------------------------------------------------- subclasses

    @abc.abstractmethod
    def assign_batch(self, batch: list[Request], now: float) -> list[DispatchOutcome]:
        """Resolve one accumulated batch; one outcome per request."""
