"""Dispatcher interface shared by every algorithm of the evaluation.

A dispatcher receives requests one by one (in release order) from the
simulator and either assigns each request to a worker — by updating that
worker's planned route — or rejects it. Batch-style algorithms may defer
requests and assign them when :meth:`Dispatcher.flush` is called.

Every dispatcher reports a :class:`DispatchOutcome` per request so the metrics
collector can compute the unified cost, served rate and per-request work
(candidates considered, insertions evaluated).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.instance import URPSMInstance
from repro.core.types import Request
from repro.index.grid import GridIndex
from repro.network.oracle import DistanceOracle

if TYPE_CHECKING:  # imported lazily to avoid a dispatch <-> simulation cycle
    from repro.simulation.fleet import FleetState


@dataclass(frozen=True, slots=True)
class DispatchOutcome:
    """What happened to one request."""

    request: Request
    served: bool
    worker_id: int | None = None
    increased_cost: float = 0.0
    candidates_considered: int = 0
    insertions_evaluated: int = 0
    decision_rejected: bool = False
    """True when the decision phase rejected the request before planning."""


@dataclass
class DispatcherConfig:
    """Knobs shared by all dispatchers (Table 5 of the paper).

    Attributes:
        grid_cell_metres: grid-index cell size ``g`` in metres.
        reject_unprofitable: after planning, reject the request anyway if
            serving it increases the unified cost more than its penalty.
        batch_interval: batching window in simulated seconds (used only by
            batch-style dispatchers).
        kinetic_node_budget: search-node budget per schedule optimisation of
            the kinetic baseline (its search is exponential by design; the
            budget mirrors a wall-clock cap).
    """

    grid_cell_metres: float = 2000.0
    reject_unprofitable: bool = False
    batch_interval: float = 6.0
    kinetic_node_budget: int = 20_000


class Dispatcher(abc.ABC):
    """Base class of all online route-planning algorithms."""

    #: short name used in benchmark tables ("pruneGreedyDP", "tshare", ...)
    name: str = "dispatcher"

    def __init__(self, config: DispatcherConfig | None = None) -> None:
        self.config = config or DispatcherConfig()
        self.instance: URPSMInstance | None = None
        self.fleet: "FleetState | None" = None
        self.oracle: DistanceOracle | None = None
        self.grid: GridIndex | None = None

    # ------------------------------------------------------------- lifecycle

    def setup(self, instance: URPSMInstance, fleet: "FleetState") -> None:
        """Bind the dispatcher to a problem instance and a fleet.

        Subclasses overriding this must call ``super().setup(...)`` first.
        """
        self.instance = instance
        self.fleet = fleet
        self.oracle = instance.oracle
        self.grid = self._build_grid(instance)
        for state in fleet:
            self.grid.insert(state.worker.id, state.position)

    def _build_grid(self, instance: URPSMInstance) -> GridIndex:
        """Build the worker grid index; overridden by tshare to build its variant."""
        return GridIndex(instance.network, self.config.grid_cell_metres)

    # --------------------------------------------------------------- running

    @abc.abstractmethod
    def dispatch(self, request: Request, now: float) -> DispatchOutcome | None:
        """Handle one released request at simulation time ``now``.

        Returns the outcome, or ``None`` if the request was deferred (batch
        dispatchers); deferred requests must eventually be resolved by
        :meth:`flush`.
        """

    def flush(self, now: float) -> list[DispatchOutcome]:
        """Resolve any deferred requests (no-op for immediate dispatchers)."""
        return []

    # --------------------------------------------------------------- helpers

    def sync_grid(self) -> None:
        """Refresh the grid index with the fleet's current positions."""
        assert self.grid is not None and self.fleet is not None
        for state in self.fleet:
            self.grid.update(state.worker.id, state.position)

    def candidate_worker_ids(self, request: Request, now: float) -> list[int]:
        """Workers that could possibly reach the request's origin in time.

        Uses the grid index with a Euclidean reachability radius derived from
        the remaining time budget and the maximum network speed, so no feasible
        worker is ever filtered out (the filter of Algorithm 5, line 3).
        """
        assert self.grid is not None and self.oracle is not None and self.fleet is not None
        budget_seconds = request.deadline - now
        if budget_seconds <= 0:
            return []
        radius_metres = budget_seconds * self.oracle.network.max_speed
        candidates = self.grid.members_near_vertex(request.origin, radius_metres)
        if not candidates:
            # degenerate grids (single cell) or stale entries: fall back to all
            candidates = [state.worker.id for state in self.fleet]
        return [int(worker_id) for worker_id in candidates]

    def memory_estimate_bytes(self) -> int:
        """Memory footprint of the dispatcher's index structures."""
        return self.grid.memory_estimate_bytes() if self.grid is not None else 0

    @property
    def is_batched(self) -> bool:
        """Whether the dispatcher defers requests to periodic flushes."""
        return False
