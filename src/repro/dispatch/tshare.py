"""The ``tshare`` baseline (Ma, Zheng, Wolfson — ICDE 2013).

T-Share answers each request in two steps:

1. **Searching**: starting from the request's origin cell, walk the pre-sorted
   cell list of the T-share grid index and collect the workers in every cell
   whose estimated travel time fits within the pickup time window
   (``e_r - dis(o_r, d_r) - now``). This single-side search is fast but
   *lossy*: workers just outside the scanned cells are discarded even when
   they could still serve the request, which is why the paper observes the
   lowest served rate for tshare.
2. **Scheduling**: for every surviving candidate, run the basic (exhaustive)
   insertion and pick the worker with the minimal increased distance.
"""

from __future__ import annotations

import math

from repro.core.insertion.base import InsertionOperator
from repro.core.insertion.basic import BasicInsertion
from repro.core.instance import URPSMInstance
from repro.core.types import Request
from repro.dispatch.base import Dispatcher, DispatcherConfig, DispatchOutcome
from repro.index.tshare_grid import TShareGridIndex

INFINITY = math.inf


class TShare(Dispatcher):
    """Grid-search candidate filtering followed by basic insertion."""

    name = "tshare"

    # The single-side cell walk is lossy by design: which workers it finds
    # depends on their exact grid cells, so the event kernel must materialise
    # the whole fleet before every dispatch (lazy advancement would change
    # which cells the walk visits, changing results — not just performance).
    requires_exact_positions = True

    def __init__(
        self,
        config: DispatcherConfig | None = None,
        insertion: InsertionOperator | None = None,
        average_speed: float | None = None,
    ) -> None:
        super().__init__(config)
        self.insertion = insertion or BasicInsertion()
        self._average_speed = average_speed

    def _build_grid(self, instance: URPSMInstance) -> TShareGridIndex:
        # T-share converts cell-centre distances into time with an average
        # speed; we use half the maximum network speed as a representative
        # urban average unless overridden.
        average_speed = self._average_speed or instance.network.max_speed * 0.5
        return TShareGridIndex(
            instance.network, self.config.grid_cell_metres, average_speed=average_speed
        )

    def dispatch(self, request: Request, now: float) -> DispatchOutcome:
        assert self.fleet is not None and self.oracle is not None
        self.sync_grid()

        direct = self.oracle.distance(request.origin, request.destination)
        pickup_budget = (request.deadline - direct) - now
        if pickup_budget <= 0:
            return DispatchOutcome(request=request, served=False)

        grid = self.grid
        assert isinstance(grid, TShareGridIndex)
        candidate_ids = [
            int(worker_id)
            for worker_id in grid.candidate_workers(request.origin, pickup_budget)
            if self.fleet.is_available(int(worker_id))
        ]

        best_delta = INFINITY
        best_worker_id: int | None = None
        best_route = None
        insertions = 0
        for worker_id in candidate_ids:
            state = self.fleet.state_of(worker_id)
            state.route.remember_direct_distance(request, direct)
            result = self.insertion.best_insertion(state.route, request, self.oracle)
            insertions += 1
            if result.feasible and result.delta < best_delta - 1e-9:
                best_delta = result.delta
                best_worker_id = worker_id
                best_route = state.route.with_insertion(
                    request, result.pickup_index, result.dropoff_index, self.oracle
                )

        if best_worker_id is None or best_route is None:
            return DispatchOutcome(
                request=request,
                served=False,
                candidates_considered=len(candidate_ids),
                insertions_evaluated=insertions,
            )
        state = self.fleet.state_of(best_worker_id)
        state.adopt_route(best_route, request=request)
        self.grid.update(best_worker_id, state.position)
        return DispatchOutcome(
            request=request,
            served=True,
            worker_id=best_worker_id,
            increased_cost=best_delta,
            candidates_considered=len(candidate_ids),
            insertions_evaluated=insertions,
        )
