"""Online dispatch algorithms: pruneGreedyDP, GreedyDP and the paper's baselines."""

from repro.dispatch.base import BatchDispatcher, Dispatcher, DispatcherConfig, DispatchOutcome
from repro.dispatch.batch import Batch
from repro.dispatch.greedy_dp import GreedyDP, PruneGreedyDP
from repro.dispatch.kinetic import Kinetic
from repro.dispatch.nearest import NearestWorker
from repro.dispatch.reoptimize import PruneGreedyDPReopt, reinsertion_improvement
from repro.dispatch.tshare import TShare

ALGORITHMS = {
    "pruneGreedyDP": PruneGreedyDP,
    "GreedyDP": GreedyDP,
    "tshare": TShare,
    "kinetic": Kinetic,
    "batch": Batch,
    "nearest": NearestWorker,
    "pruneGreedyDP+reopt": PruneGreedyDPReopt,
}
"""Registry of dispatcher classes keyed by their benchmark names."""

# DispatcherSpec reads ALGORITHMS lazily, so the registry must exist first.
from repro.dispatch.registry import (  # noqa: E402
    CLUSTER_PREFIX,
    SHARDED_PREFIX,
    DispatcherSpec,
    list_dispatchers,
    suggest_dispatchers,
)
from repro.exceptions import ConfigurationError  # noqa: E402


def make_dispatcher(name: str, config: DispatcherConfig | None = None) -> Dispatcher:
    """Instantiate a dispatcher from the registry by name.

    ``"sharded:<inner>"`` builds the sharded wrapper around the registry
    algorithm ``<inner>``; ``"cluster:<inner>"`` builds the multiprocess
    cluster front door; plain ``"sharded"``/``"cluster"`` default to
    pruneGreedyDP.

    This is the string-keyed compatibility front door; structured callers use
    :meth:`DispatcherSpec.parse` / :meth:`DispatcherSpec.build` directly (and
    get :class:`~repro.exceptions.ConfigurationError` instead of ``KeyError``).
    """
    try:
        spec = DispatcherSpec.parse(name)
    except ConfigurationError as exc:
        raise KeyError(str(exc)) from exc
    return spec.build(config=config)


__all__ = [
    "BatchDispatcher",
    "Dispatcher",
    "DispatcherConfig",
    "DispatchOutcome",
    "Batch",
    "GreedyDP",
    "PruneGreedyDP",
    "PruneGreedyDPReopt",
    "Kinetic",
    "NearestWorker",
    "TShare",
    "reinsertion_improvement",
    "ALGORITHMS",
    "SHARDED_PREFIX",
    "CLUSTER_PREFIX",
    "DispatcherSpec",
    "list_dispatchers",
    "suggest_dispatchers",
    "make_dispatcher",
]
