"""Online dispatch algorithms: pruneGreedyDP, GreedyDP and the paper's baselines."""

from repro.dispatch.base import BatchDispatcher, Dispatcher, DispatcherConfig, DispatchOutcome
from repro.dispatch.batch import Batch
from repro.dispatch.greedy_dp import GreedyDP, PruneGreedyDP
from repro.dispatch.kinetic import Kinetic
from repro.dispatch.nearest import NearestWorker
from repro.dispatch.reoptimize import PruneGreedyDPReopt, reinsertion_improvement
from repro.dispatch.tshare import TShare

ALGORITHMS = {
    "pruneGreedyDP": PruneGreedyDP,
    "GreedyDP": GreedyDP,
    "tshare": TShare,
    "kinetic": Kinetic,
    "batch": Batch,
    "nearest": NearestWorker,
    "pruneGreedyDP+reopt": PruneGreedyDPReopt,
}
"""Registry of dispatcher classes keyed by their benchmark names."""

#: prefix selecting the sharded wrapper: ``"sharded:<inner>"`` wraps any
#: registry algorithm in a :class:`~repro.sharding.dispatcher.ShardedDispatcher`
#: (K and the partitioning strategy come from :class:`DispatcherConfig`).
SHARDED_PREFIX = "sharded:"


def make_dispatcher(name: str, config: DispatcherConfig | None = None) -> Dispatcher:
    """Instantiate a dispatcher from the registry by name.

    ``"sharded:<inner>"`` builds the sharded wrapper around the registry
    algorithm ``<inner>``; plain ``"sharded"`` defaults to pruneGreedyDP.
    """
    if name == "sharded" or name.startswith(SHARDED_PREFIX):
        # imported lazily: repro.sharding itself builds inner dispatchers here
        from repro.sharding.dispatcher import ShardedDispatcher

        inner = name[len(SHARDED_PREFIX):] if name.startswith(SHARDED_PREFIX) else "pruneGreedyDP"
        if inner not in ALGORITHMS:
            raise KeyError(
                f"unknown sharded inner dispatcher {inner!r}; available: {sorted(ALGORITHMS)}"
            )
        return ShardedDispatcher(config, inner=inner)
    try:
        dispatcher_class = ALGORITHMS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown dispatcher {name!r}; available: {sorted(ALGORITHMS)}"
        ) from exc
    return dispatcher_class(config)


__all__ = [
    "BatchDispatcher",
    "Dispatcher",
    "DispatcherConfig",
    "DispatchOutcome",
    "Batch",
    "GreedyDP",
    "PruneGreedyDP",
    "PruneGreedyDPReopt",
    "Kinetic",
    "NearestWorker",
    "TShare",
    "reinsertion_improvement",
    "ALGORITHMS",
    "SHARDED_PREFIX",
    "make_dispatcher",
]
