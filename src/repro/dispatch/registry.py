"""Structured dispatcher selection: :class:`DispatcherSpec` and discovery.

The registry used to be addressed by bare strings, with the sharded wrapper
selected through ad-hoc ``"sharded:<inner>"`` prefix parsing scattered across
the CLI and the experiment runner. This module makes the selection a value:

* :class:`DispatcherSpec` — a frozen, serialisable description of *which*
  algorithm to run and with *which* knobs (grid cell, batch window, sharding
  layout). ``spec.build()`` materialises the dispatcher; ``"sharded:<inner>"``
  strings are still accepted through :meth:`DispatcherSpec.parse` so existing
  call sites and saved configurations keep working.
* :func:`list_dispatchers` — discovery of every registered algorithm name
  (optionally including the sharded variants).
* :func:`suggest_dispatchers` — close-match suggestions used to build helpful
  "unknown algorithm" errors in the CLI and the spec validators.

The class registry itself (:data:`repro.dispatch.ALGORITHMS`) stays where it
always was; this module only adds the structured front door.
"""

from __future__ import annotations

import dataclasses
import difflib
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING

from repro.dispatch.base import Dispatcher, DispatcherConfig
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

#: prefix historically selecting the sharded wrapper (``"sharded:<inner>"``).
SHARDED_PREFIX = "sharded:"

#: prefix selecting the multiprocess cluster front door (``"cluster:<inner>"``).
CLUSTER_PREFIX = "cluster:"


def _registry() -> dict:
    from repro.dispatch import ALGORITHMS  # lazy: registry.py is imported by the package

    return ALGORITHMS


def list_dispatchers(include_sharded: bool = False) -> list[str]:
    """Names of every registered dispatch algorithm, sorted.

    Args:
        include_sharded: also list the ``sharded:<name>`` wrapper variants.
    """
    names = sorted(_registry())
    if include_sharded:
        names += [f"{SHARDED_PREFIX}{name}" for name in sorted(_registry())]
    return names


def suggest_dispatchers(name: str, limit: int = 3) -> list[str]:
    """Registry names close to ``name`` (for "did you mean" errors)."""
    candidates = list_dispatchers(include_sharded=True) + ["sharded", "cluster"]
    return difflib.get_close_matches(name, candidates, n=limit, cutoff=0.4)


def _unknown_name_error(kind: str, name: str) -> ConfigurationError:
    message = f"unknown {kind} {name!r}; available: {list_dispatchers()}"
    suggestions = suggest_dispatchers(name)
    if suggestions:
        message += f" (did you mean {', '.join(repr(s) for s in suggestions)}?)"
    return ConfigurationError(message)


def unknown_fields_error(kind: str, unknown: set[str], known: set[str]) -> ConfigurationError:
    """Error for unknown mapping keys with close-match suggestions.

    Shared by every ``from_dict``-style loader (dispatcher spec, platform
    spec, builder kwargs) so the error format stays uniform.
    """
    hints = []
    for key in sorted(unknown):
        close = difflib.get_close_matches(key, sorted(known), n=1, cutoff=0.4)
        hints.append(f"{key!r}" + (f" (did you mean {close[0]!r}?)" if close else ""))
    return ConfigurationError(
        f"unknown {kind} field(s): {', '.join(hints)}; valid fields: {sorted(known)}"
    )


@dataclass(frozen=True)
class DispatcherSpec:
    """Declarative description of one dispatcher configuration.

    Replaces the ``"sharded:<inner>"`` string convention and the loose
    :class:`~repro.dispatch.base.DispatcherConfig` kwargs with a single
    validated value that can be built, compared, serialised
    (:meth:`to_dict`/:meth:`from_dict`) and embedded in a
    :class:`~repro.service.spec.PlatformSpec`.

    Attributes:
        algorithm: registry name of the (inner) algorithm.
        sharded: wrap the algorithm in the sharded dispatcher even at
            ``num_shards=1`` (the exactness wrapper); ``num_shards > 1``
            implies sharding regardless of this flag.
        cluster: run the shards as long-lived worker *processes* behind the
            :class:`~repro.cluster.dispatcher.ClusterDispatcher` front door
            instead of the in-process sharded wrapper. Takes precedence over
            ``sharded`` when both are set.
        num_shards: spatial shards ``K`` of the sharded wrapper.
        shard_strategy: partitioning strategy (see
            :data:`repro.sharding.partitioner.STRATEGIES`).
        shard_escalate_k: neighbouring shards tried after the origin shard.
        shard_oracle_backend: distance backend of the per-shard oracles —
            ``"shared"`` (the global oracle, bit-exact with the unsharded
            run), a backend name, or ``"auto"`` for a locality-appropriate
            per-shard choice.
        grid_cell_metres: grid-index cell size; ``None`` derives it from the
            scenario (``grid_km * 1000``) when built through a platform spec,
            or falls back to the :class:`DispatcherConfig` default.
        reject_unprofitable: post-planning profitability check.
        batch_interval: accumulation window of batch-style dispatchers (s).
        kinetic_node_budget: search-node budget of the kinetic baseline.
    """

    algorithm: str = "pruneGreedyDP"
    sharded: bool = False
    cluster: bool = False
    num_shards: int = 1
    shard_strategy: str = "grid"
    shard_escalate_k: int = 2
    shard_oracle_backend: str = "shared"
    grid_cell_metres: float | None = None
    reject_unprofitable: bool = False
    batch_interval: float = 6.0
    kinetic_node_budget: int = 20_000

    # ------------------------------------------------------------ constructors

    @classmethod
    def parse(cls, name: str, **overrides) -> "DispatcherSpec":
        """Build a spec from a registry name (``"sharded:<inner>"`` included).

        ``overrides`` may set any spec field except ``algorithm`` (the name
        carries it); a ``sharded`` override is OR-ed with the name's prefix.
        Raises :class:`~repro.exceptions.ConfigurationError` with close-match
        suggestions when the name is unknown.
        """
        if "algorithm" in overrides:
            raise ConfigurationError(
                "pass the algorithm through the name argument of parse(), "
                "not as an override"
            )
        sharded = bool(overrides.pop("sharded", False))
        cluster = bool(overrides.pop("cluster", False))
        algorithm = name
        if name == "sharded":
            sharded, algorithm = True, "pruneGreedyDP"
        elif name == "cluster":
            cluster, algorithm = True, "pruneGreedyDP"
        elif name.startswith(SHARDED_PREFIX):
            sharded, algorithm = True, name[len(SHARDED_PREFIX):]
            if algorithm not in _registry():
                raise _unknown_name_error("sharded inner dispatcher", algorithm)
        elif name.startswith(CLUSTER_PREFIX):
            cluster, algorithm = True, name[len(CLUSTER_PREFIX):]
            if algorithm not in _registry():
                raise _unknown_name_error("cluster inner dispatcher", algorithm)
        if algorithm not in _registry():
            raise _unknown_name_error("dispatcher", algorithm)
        return cls(
            algorithm=algorithm, sharded=sharded, cluster=cluster, **overrides
        ).validate()

    @classmethod
    def from_config(
        cls,
        config: DispatcherConfig,
        algorithm: str = "pruneGreedyDP",
        sharded: bool = False,
    ) -> "DispatcherSpec":
        """Lift a legacy :class:`DispatcherConfig` into a spec."""
        return cls(
            algorithm=algorithm,
            sharded=sharded,
            num_shards=config.num_shards,
            shard_strategy=config.shard_strategy,
            shard_escalate_k=config.shard_escalate_k,
            shard_oracle_backend=config.shard_oracle_backend,
            grid_cell_metres=config.grid_cell_metres,
            reject_unprofitable=config.reject_unprofitable,
            batch_interval=config.batch_interval,
            kinetic_node_budget=config.kinetic_node_budget,
        )

    @classmethod
    def from_dict(cls, data: dict) -> "DispatcherSpec":
        """Build a spec from a plain mapping (JSON/TOML payloads)."""
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise unknown_fields_error("dispatcher spec", unknown, known)
        return cls(**data).validate()

    # -------------------------------------------------------------- validation

    def validate(self) -> "DispatcherSpec":
        """Check the spec; returns ``self`` so calls can be chained."""
        if self.algorithm not in _registry():
            raise _unknown_name_error("dispatcher", self.algorithm)
        if self.num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.shard_escalate_k < 0:
            raise ConfigurationError(
                f"shard_escalate_k must be >= 0, got {self.shard_escalate_k}"
            )
        if self.is_sharded or self.cluster:
            from repro.sharding.partitioner import STRATEGIES  # lazy import cycle guard

            if self.shard_strategy not in STRATEGIES:
                raise ConfigurationError(
                    f"unknown shard strategy {self.shard_strategy!r}; "
                    f"available: {sorted(STRATEGIES)}"
                )
            valid_shard_oracles = ("shared", "auto", "apsp", "ch", "hub_labels", "dijkstra")
            if self.shard_oracle_backend not in valid_shard_oracles:
                raise ConfigurationError(
                    f"unknown shard oracle backend {self.shard_oracle_backend!r}; "
                    f"available: {list(valid_shard_oracles)}"
                )
        if self.grid_cell_metres is not None and self.grid_cell_metres <= 0:
            raise ConfigurationError(
                f"grid_cell_metres must be positive, got {self.grid_cell_metres}"
            )
        if self.batch_interval <= 0:
            raise ConfigurationError(
                f"batch_interval must be positive, got {self.batch_interval}"
            )
        return self

    # --------------------------------------------------------------- accessors

    @property
    def is_sharded(self) -> bool:
        """Whether building yields the sharded wrapper."""
        return self.sharded or self.num_shards > 1

    @property
    def name(self) -> str:
        """Display/registry name (``sharded:``/``cluster:`` prefixed variants)."""
        if self.cluster:
            return f"{CLUSTER_PREFIX}{self.algorithm}"
        return f"{SHARDED_PREFIX}{self.algorithm}" if self.is_sharded else self.algorithm

    def with_algorithm(self, name: str) -> "DispatcherSpec":
        """This spec's knobs with the algorithm replaced by ``name``.

        ``name`` may be a plain registry name or a ``"sharded:<inner>"``
        string; the parsed sharding flag is OR-ed with the spec's own.
        """
        parsed = DispatcherSpec.parse(name)
        return replace(
            self, algorithm=parsed.algorithm, sharded=self.sharded or parsed.sharded
        ).validate()

    # ------------------------------------------------------------ materialising

    def to_config(self, default_grid_cell_metres: float | None = None) -> DispatcherConfig:
        """The :class:`DispatcherConfig` equivalent of this spec.

        ``default_grid_cell_metres`` fills in the cell size when the spec
        leaves it to the scenario (``grid_cell_metres=None``).
        """
        cell = self.grid_cell_metres
        if cell is None:
            cell = (
                default_grid_cell_metres
                if default_grid_cell_metres is not None
                else DispatcherConfig.grid_cell_metres
            )
        return DispatcherConfig(
            grid_cell_metres=cell,
            reject_unprofitable=self.reject_unprofitable,
            batch_interval=self.batch_interval,
            kinetic_node_budget=self.kinetic_node_budget,
            num_shards=self.num_shards,
            shard_strategy=self.shard_strategy,
            shard_escalate_k=self.shard_escalate_k,
            shard_oracle_backend=self.shard_oracle_backend,
        )

    def build(
        self,
        config: DispatcherConfig | None = None,
        default_grid_cell_metres: float | None = None,
    ) -> Dispatcher:
        """Materialise the dispatcher described by this spec.

        Args:
            config: use this exact :class:`DispatcherConfig` instead of the
                spec's knobs (the ``make_dispatcher`` compatibility path).
            default_grid_cell_metres: scenario-derived cell size used when the
                spec does not pin one (ignored when ``config`` is given).
        """
        self.validate()
        if config is None:
            config = self.to_config(default_grid_cell_metres)
        if self.cluster:
            from repro.cluster.dispatcher import ClusterDispatcher  # lazy import cycle guard

            return ClusterDispatcher(config, inner=self.algorithm)
        if self.is_sharded:
            from repro.sharding.dispatcher import ShardedDispatcher  # lazy import cycle guard

            return ShardedDispatcher(config, inner=self.algorithm)
        return _registry()[self.algorithm](config)

    # ------------------------------------------------------------ serialisation

    def to_dict(self) -> dict:
        """Plain-data representation (inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)


__all__ = [
    "DispatcherSpec",
    "SHARDED_PREFIX",
    "CLUSTER_PREFIX",
    "list_dispatchers",
    "suggest_dispatchers",
    "unknown_fields_error",
]
