"""Periodic re-insertion improvement — an extension beyond the paper.

The paper's solutions are *insertion-only*: once a request is attached to a
worker it never moves, even if a later-arriving worker could serve it much
more cheaply. Its conclusion points at exactly this kind of follow-up
("opens up new opportunities ... to design efficient solutions"). This module
adds the natural next step: a **relocate local search** that periodically
revisits pending (not yet picked up) requests, removes them from their current
route and re-inserts them wherever the linear DP insertion finds the globally
cheapest feasible position, keeping the move only when it strictly reduces the
fleet's total planned cost.

Two entry points:

* :func:`reinsertion_improvement` — one improvement pass over a fleet; usable
  from any dispatcher or script;
* :class:`PruneGreedyDPReopt` — ``pruneGreedyDP`` plus an improvement pass
  every ``reoptimize_every`` dispatched requests (registered as
  ``"pruneGreedyDP+reopt"``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.insertion.base import InsertionOperator
from repro.core.insertion.linear_dp import LinearDPInsertion
from repro.core.route import Route
from repro.core.types import Request, StopKind
from repro.dispatch.base import DispatcherConfig, DispatchOutcome
from repro.dispatch.greedy_dp import PruneGreedyDP
from repro.network.oracle import DistanceOracle
from repro.simulation.fleet import FleetState


@dataclass
class ImprovementReport:
    """Outcome of one :func:`reinsertion_improvement` pass."""

    moves: int = 0
    cost_reduction: float = 0.0
    requests_examined: int = 0


def remove_request(route: Route, request_id: int, oracle: DistanceOracle) -> Route | None:
    """Return a copy of ``route`` without the stops of ``request_id``.

    Returns ``None`` when the request is not fully pending on this route (the
    pickup already happened, or the request is not present at all) — only fully
    pending requests may be relocated.
    """
    pickup_present = any(
        stop.request.id == request_id and stop.kind is StopKind.PICKUP for stop in route.stops
    )
    dropoff_present = any(
        stop.request.id == request_id and stop.kind is StopKind.DROPOFF for stop in route.stops
    )
    if not (pickup_present and dropoff_present):
        return None
    remaining = [stop for stop in route.stops if stop.request.id != request_id]
    stripped = Route(
        worker=route.worker,
        origin=route.origin,
        start_time=route.start_time,
        stops=remaining,
        _direct_distances=dict(route._direct_distances),
    )
    stripped.refresh(oracle)
    return stripped


def reinsertion_improvement(
    fleet: FleetState,
    oracle: DistanceOracle,
    insertion: InsertionOperator | None = None,
    max_moves: int = 50,
) -> ImprovementReport:
    """One relocate pass: move pending requests to strictly cheaper positions.

    Args:
        fleet: the fleet whose planned routes are improved in place.
        oracle: shared distance oracle.
        insertion: insertion operator used for the re-insertions (linear DP by
            default).
        max_moves: stop after this many applied moves (keeps the pass bounded).

    Returns:
        An :class:`ImprovementReport` with the number of applied moves and the
        total planned-cost reduction.
    """
    operator = insertion or LinearDPInsertion()
    report = ImprovementReport()

    for state in list(fleet):
        route = state.route
        pending: list[Request] = [
            stop.request for stop in route.stops if stop.kind is StopKind.PICKUP
        ]
        for request in pending:
            if report.moves >= max_moves:
                return report
            report.requests_examined += 1
            current_route = state.route
            current_cost = current_route.planned_cost(oracle)
            stripped = remove_request(current_route, request.id, oracle)
            if stripped is None:
                continue
            stripped_cost = stripped.planned_cost(oracle)
            removal_gain = current_cost - stripped_cost

            # best re-insertion across the whole fleet (including the origin worker)
            best_delta = None
            best_state = None
            best_route = None
            for candidate in fleet:
                if candidate is not state and not candidate.online:
                    continue  # off-shift workers take no new requests
                base_route = stripped if candidate is state else candidate.route
                result = operator.best_insertion(base_route, request, oracle)
                if not result.feasible:
                    continue
                if best_delta is None or result.delta < best_delta - 1e-9:
                    best_delta = result.delta
                    best_state = candidate
                    best_route = base_route.with_insertion(
                        request, result.pickup_index, result.dropoff_index, oracle
                    )
            if best_delta is None or best_state is None or best_route is None:
                continue
            improvement = removal_gain - best_delta
            if improvement <= 1e-6:
                continue

            # apply the move: strip from the origin worker, adopt on the target
            # (replace_route keeps plan versions / scheduled stop events honest)
            if best_state is state:
                state.replace_route(best_route)
            else:
                state.replace_route(stripped)
                record = state.assigned_requests.pop(request.id, None)
                best_state.replace_route(best_route)
                if record is not None:
                    best_state.assigned_requests[request.id] = record
                    record.worker_id = best_state.worker.id
            report.moves += 1
            report.cost_reduction += improvement
    return report


class PruneGreedyDPReopt(PruneGreedyDP):
    """pruneGreedyDP followed by a periodic relocate improvement pass.

    Args:
        config: shared dispatcher configuration.
        reoptimize_every: run one improvement pass after every this many
            dispatched requests (0 disables re-optimisation).
        max_moves: cap on applied moves per pass.
    """

    name = "pruneGreedyDP+reopt"

    def __init__(
        self,
        config: DispatcherConfig | None = None,
        insertion: InsertionOperator | None = None,
        reoptimize_every: int = 20,
        max_moves: int = 25,
    ) -> None:
        super().__init__(config, insertion)
        self.reoptimize_every = reoptimize_every
        self.max_moves = max_moves
        self.total_improvement = 0.0
        self.total_moves = 0
        self._since_last_pass = 0

    def dispatch(self, request: Request, now: float) -> DispatchOutcome:
        outcome = super().dispatch(request, now)
        self._since_last_pass += 1
        if self.reoptimize_every and self._since_last_pass >= self.reoptimize_every:
            self._since_last_pass = 0
            assert self.fleet is not None and self.oracle is not None
            report = reinsertion_improvement(
                self.fleet, self.oracle, insertion=self.insertion, max_moves=self.max_moves
            )
            self.total_improvement += report.cost_reduction
            self.total_moves += report.moves
        return outcome
