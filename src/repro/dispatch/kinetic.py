"""The ``kinetic`` baseline (Huang, Bastani, Jin, Wang — VLDB 2014).

The kinetic-tree approach maintains, for every worker, *all* feasible orderings
of its pending stops and answers an insertion by extending those orderings with
the new request's pickup and drop-off, keeping the cheapest feasible schedule.
Unlike insertion, the relative order of existing stops may change, which makes
the search exponential in the number of pending stops — the paper observes that
kinetic fails to terminate on large instances and degrades sharply with large
worker capacities.

This implementation realises the same semantics with a branch-and-bound search
over stop orderings (precedence, deadline and capacity pruning plus a running
upper bound). A configurable node budget bounds pathological cases: when the
budget is exhausted the best schedule found so far is used, mirroring the
practical behaviour of a time-limited kinetic tree.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.core.route import Route
from repro.core.types import Request, Stop, StopKind, dropoff_stop, pickup_stop
from repro.dispatch.base import Dispatcher, DispatcherConfig, DispatchOutcome
from repro.network.oracle import DistanceOracle

if TYPE_CHECKING:  # avoid a dispatch <-> simulation import cycle
    from repro.simulation.fleet import WorkerState

INFINITY = math.inf


class _ScheduleSearch:
    """Branch-and-bound search for the cheapest feasible ordering of stops."""

    def __init__(
        self,
        oracle: DistanceOracle,
        origin: int,
        start_time: float,
        initial_load: int,
        capacity: int,
        stops: list[Stop],
        onboard_ids: set[int],
        node_budget: int,
    ) -> None:
        self.oracle = oracle
        self.origin = origin
        self.start_time = start_time
        self.initial_load = initial_load
        self.capacity = capacity
        self.stops = stops
        self.onboard_ids = onboard_ids
        self.node_budget = node_budget
        self.nodes_expanded = 0
        self.best_cost = INFINITY
        self.best_order: list[int] | None = None

    def run(self) -> tuple[float, list[Stop] | None]:
        """Return ``(cost, ordering)`` of the cheapest feasible schedule."""
        if not self.stops:
            return 0.0, []
        self._search(order=[], used=0, vertex=self.origin, time=self.start_time,
                     load=self.initial_load, cost=0.0)
        if self.best_order is None:
            return INFINITY, None
        return self.best_cost, [self.stops[index] for index in self.best_order]

    def _search(
        self, order: list[int], used: int, vertex: int, time: float, load: int, cost: float
    ) -> None:
        if self.nodes_expanded > self.node_budget:
            return
        if len(order) == len(self.stops):
            if cost < self.best_cost:
                self.best_cost = cost
                self.best_order = list(order)
            return
        for index, stop in enumerate(self.stops):
            mask = 1 << index
            if used & mask:
                continue
            if stop.kind is StopKind.DROPOFF and stop.request.id not in self.onboard_ids:
                # the pickup of this request must come first
                pickup_seen = any(
                    (used >> other) & 1
                    for other, candidate in enumerate(self.stops)
                    if candidate.kind is StopKind.PICKUP
                    and candidate.request.id == stop.request.id
                )
                if not pickup_seen:
                    continue
            leg = self.oracle.distance(vertex, stop.vertex)
            arrival = time + leg
            new_cost = cost + leg
            if new_cost >= self.best_cost:
                continue
            if stop.kind is StopKind.PICKUP:
                latest = stop.request.deadline - self.oracle.distance(
                    stop.request.origin, stop.request.destination
                )
                new_load = load + stop.request.capacity
            else:
                latest = stop.request.deadline
                new_load = load - stop.request.capacity
            if arrival > latest + 1e-9 or new_load > self.capacity:
                continue
            self.nodes_expanded += 1
            order.append(index)
            self._search(order, used | mask, stop.vertex, arrival, new_load, new_cost)
            order.pop()


class Kinetic(Dispatcher):
    """Kinetic-tree style dispatcher with full schedule re-optimisation.

    Args:
        config: shared dispatcher configuration.
        node_budget: maximum number of search nodes expanded per schedule
            optimisation; generous by default so small instances are solved
            exactly.
    """

    name = "kinetic"

    def __init__(
        self, config: DispatcherConfig | None = None, node_budget: int | None = None
    ) -> None:
        super().__init__(config)
        self.node_budget = node_budget if node_budget is not None else self.config.kinetic_node_budget

    # ------------------------------------------------------------- dispatch

    def dispatch(self, request: Request, now: float) -> DispatchOutcome:
        assert self.fleet is not None and self.oracle is not None
        self.sync_grid()
        candidate_ids = self.candidate_worker_ids(request, now)

        direct = self.oracle.distance(request.origin, request.destination)
        best_delta = INFINITY
        best_worker_id: int | None = None
        best_schedule: list[Stop] | None = None
        insertions = 0

        for worker_id in candidate_ids:
            state = self.fleet.state_of(worker_id)
            if request.capacity > state.worker.capacity:
                continue
            state.route.remember_direct_distance(request, direct)
            delta, schedule = self._best_schedule_delta(state, request)
            insertions += 1
            if schedule is not None and delta < best_delta - 1e-9:
                best_delta = delta
                best_worker_id = worker_id
                best_schedule = schedule

        if best_worker_id is None or best_schedule is None:
            return DispatchOutcome(
                request=request,
                served=False,
                candidates_considered=len(candidate_ids),
                insertions_evaluated=insertions,
            )

        state = self.fleet.state_of(best_worker_id)
        new_route = Route(
            worker=state.worker,
            origin=state.position,
            start_time=state.position_time,
            stops=best_schedule,
        )
        new_route.remember_direct_distance(request, direct)
        new_route.refresh(self.oracle)
        state.adopt_route(new_route, request=request)
        self.grid.update(best_worker_id, state.position)
        return DispatchOutcome(
            request=request,
            served=True,
            worker_id=best_worker_id,
            increased_cost=best_delta,
            candidates_considered=len(candidate_ids),
            insertions_evaluated=insertions,
        )

    # --------------------------------------------------------------- helpers

    def _best_schedule_delta(
        self, state: "WorkerState", request: Request
    ) -> tuple[float, list[Stop] | None]:
        """Cheapest feasible schedule including ``request``, and its extra cost."""
        oracle = self.oracle
        assert oracle is not None
        route = state.route
        current_cost = route.planned_cost(oracle)
        onboard_ids = {req.id for req in route.onboard_requests()}
        extended_stops = list(route.stops) + [pickup_stop(request), dropoff_stop(request)]
        search = _ScheduleSearch(
            oracle=oracle,
            origin=route.origin,
            start_time=route.start_time,
            initial_load=route.initial_load(),
            capacity=state.worker.capacity,
            stops=extended_stops,
            onboard_ids=onboard_ids,
            node_budget=self.node_budget,
        )
        new_cost, schedule = search.run()
        if schedule is None:
            return INFINITY, None
        return new_cost - current_cost, schedule
