"""The ``batch`` baseline (Alonso-Mora et al., PNAS 2017, adapted).

Instead of processing each request immediately, the platform accumulates the
requests released within a short batching window (6 seconds in the paper's
description), groups them by proximity, sorts the groups, and then greedily
assigns every request of every group to the worker whose route absorbs it with
the minimal increased distance.

Batching helps pack compatible requests together but delays the assignment,
which hurts requests with tight deadlines — exactly the trade-off visible in
the paper's evaluation, where ``batch`` serves noticeably fewer requests than
``pruneGreedyDP`` while being slower per request.

The deferral/window plumbing lives in
:class:`~repro.dispatch.base.BatchDispatcher`; this module only implements the
grouping and greedy per-request assignment.
"""

from __future__ import annotations

import math
from collections import defaultdict

from repro.core.insertion.base import InsertionOperator
from repro.core.insertion.linear_dp import LinearDPInsertion
from repro.core.types import Request
from repro.dispatch.base import BatchDispatcher, DispatcherConfig, DispatchOutcome

INFINITY = math.inf


class Batch(BatchDispatcher):
    """Batched group assignment with greedy per-request insertion."""

    name = "batch"

    def __init__(
        self,
        config: DispatcherConfig | None = None,
        insertion: InsertionOperator | None = None,
    ) -> None:
        super().__init__(config)
        self.insertion = insertion or LinearDPInsertion()

    # ------------------------------------------------------------ interface

    def assign_batch(self, batch: list[Request], now: float) -> list[DispatchOutcome]:
        """Assign every deferred request, in proximity groups."""
        assert self.fleet is not None and self.oracle is not None
        self.sync_grid()
        outcomes: list[DispatchOutcome] = []
        for group in self._grouped_requests(batch):
            for request in sorted(group, key=lambda item: item.deadline):
                outcomes.append(self._assign(request, now))
        return outcomes

    # --------------------------------------------------------------- helpers

    def _grouped_requests(self, batch: list[Request]) -> list[list[Request]]:
        """Group the batch by origin grid cell; larger groups first."""
        assert self.grid is not None
        groups: dict[tuple[int, int], list[Request]] = defaultdict(list)
        for request in batch:
            groups[self.grid.cell_of_vertex(request.origin)].append(request)
        return sorted(groups.values(), key=len, reverse=True)

    def _assign(self, request: Request, now: float) -> DispatchOutcome:
        assert self.fleet is not None and self.oracle is not None
        if now > request.deadline:
            return DispatchOutcome(request=request, served=False)
        candidate_ids = self.candidate_worker_ids(request, now)
        direct = self.oracle.distance(request.origin, request.destination)

        best_delta = INFINITY
        best_worker_id: int | None = None
        best_route = None
        insertions = 0
        for worker_id in candidate_ids:
            state = self.fleet.state_of(worker_id)
            state.route.remember_direct_distance(request, direct)
            result = self.insertion.best_insertion(state.route, request, self.oracle)
            insertions += 1
            if result.feasible and result.delta < best_delta - 1e-9:
                best_delta = result.delta
                best_worker_id = worker_id
                best_route = state.route.with_insertion(
                    request, result.pickup_index, result.dropoff_index, self.oracle
                )
        if best_worker_id is None or best_route is None:
            return DispatchOutcome(
                request=request,
                served=False,
                candidates_considered=len(candidate_ids),
                insertions_evaluated=insertions,
            )
        state = self.fleet.state_of(best_worker_id)
        state.adopt_route(best_route, request=request)
        self.grid.update(best_worker_id, state.position)
        return DispatchOutcome(
            request=request,
            served=True,
            worker_id=best_worker_id,
            increased_cost=best_delta,
            candidates_considered=len(candidate_ids),
            insertions_evaluated=insertions,
        )
