"""A simple nearest-worker baseline (not part of the paper's evaluation).

Assigns each request to the closest worker (by Euclidean distance to the
request's origin) whose route can absorb it feasibly, without comparing
increased costs across workers. Useful as a sanity baseline in examples and
tests: every algorithm of the paper should beat it on unified cost.
"""

from __future__ import annotations

from repro.core.insertion.base import InsertionOperator
from repro.core.insertion.linear_dp import LinearDPInsertion
from repro.core.types import Request
from repro.dispatch.base import Dispatcher, DispatcherConfig, DispatchOutcome


class NearestWorker(Dispatcher):
    """First-feasible assignment in order of Euclidean proximity."""

    name = "nearest"

    def __init__(
        self,
        config: DispatcherConfig | None = None,
        insertion: InsertionOperator | None = None,
    ) -> None:
        super().__init__(config)
        self.insertion = insertion or LinearDPInsertion()

    def dispatch(self, request: Request, now: float) -> DispatchOutcome:
        assert self.fleet is not None and self.oracle is not None
        self.sync_grid()
        candidate_ids = self.candidate_worker_ids(request, now)
        network = self.oracle.network
        ordered = sorted(
            candidate_ids,
            key=lambda worker_id: network.euclidean(
                self.fleet.state_of(worker_id).position, request.origin
            ),
        )
        direct = self.oracle.distance(request.origin, request.destination)
        insertions = 0
        for worker_id in ordered:
            state = self.fleet.state_of(worker_id)
            state.route.remember_direct_distance(request, direct)
            result = self.insertion.best_insertion(state.route, request, self.oracle)
            insertions += 1
            if not result.feasible:
                continue
            new_route = state.route.with_insertion(
                request, result.pickup_index, result.dropoff_index, self.oracle
            )
            state.adopt_route(new_route, request=request)
            self.grid.update(worker_id, state.position)
            return DispatchOutcome(
                request=request,
                served=True,
                worker_id=worker_id,
                increased_cost=result.delta,
                candidates_considered=len(candidate_ids),
                insertions_evaluated=insertions,
            )
        return DispatchOutcome(
            request=request,
            served=False,
            candidates_considered=len(candidate_ids),
            insertions_evaluated=insertions,
        )
