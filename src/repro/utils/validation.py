"""Small argument-validation helpers shared across the library.

Raising early with a clear message keeps the algorithmic modules free of
repetitive guard clauses.
"""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, else raise :class:`ValueError`."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Return ``value`` if >= 0, else raise :class:`ValueError`."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_probability(value: float, name: str) -> float:
    """Return ``value`` if within [0, 1], else raise :class:`ValueError`."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value


def require_type(value: Any, expected: type | tuple[type, ...], name: str) -> Any:
    """Return ``value`` if of the expected type, else raise :class:`TypeError`."""
    if not isinstance(value, expected):
        raise TypeError(f"{name} must be {expected}, got {type(value).__name__}")
    return value
