"""Deterministic random-number plumbing.

Every stochastic component of the library (workload generators, worker
placement, Gaussian capacities, hardness constructions) draws from a
``numpy.random.Generator`` created here, so that a scenario seed fully
determines the simulation outcome.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from ``seed``.

    Args:
        seed: any non-negative integer, or ``None`` for OS entropy. Experiments
            should always pass an explicit seed.
    """
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one ``seed``.

    Uses :class:`numpy.random.SeedSequence` spawning so the streams are
    statistically independent and reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_seed(seed: int, *labels: int | str) -> int:
    """Derive a child seed from ``seed`` and a sequence of labels.

    Labels may be strings (hashed stably) or integers. The same inputs always
    produce the same child seed, independent of Python's per-process hash
    randomisation.
    """
    entropy: list[int] = [int(seed)]
    for label in labels:
        if isinstance(label, int):
            entropy.append(label & 0xFFFFFFFF)
        else:
            entropy.append(_stable_string_hash(str(label)))
    sequence = np.random.SeedSequence(entropy)
    return int(sequence.generate_state(1, dtype=np.uint32)[0])


def spawn_key(*labels: int | str) -> tuple[int, ...]:
    """Stable :class:`numpy.random.SeedSequence` spawn key from mixed labels.

    String labels are hashed with the same stable FNV-1a hash as
    :func:`derive_seed`, so the key is reproducible across processes and
    Python hash-randomisation settings — the property the parallel sweep
    runner relies on to give every (parameter, value, replicate) point the
    same child seed no matter which worker process computes it.
    """
    return tuple(
        (label & 0xFFFFFFFF) if isinstance(label, int) else _stable_string_hash(str(label))
        for label in labels
    )


def derive_spawned_seed(seed: int, *labels: int | str) -> int:
    """Child seed of ``seed`` addressed by a spawn key built from ``labels``.

    Unlike :func:`derive_seed` (which folds the labels into the entropy
    pool), this uses SeedSequence *spawn keys* — the mechanism numpy defines
    for addressing independent child streams — so the derived streams are
    guaranteed statistically independent of the parent and of each other.
    """
    sequence = np.random.SeedSequence(int(seed), spawn_key=spawn_key(*labels))
    return int(sequence.generate_state(1, dtype=np.uint32)[0])


def _stable_string_hash(text: str) -> int:
    """A small, stable (non-cryptographic) 32-bit string hash (FNV-1a)."""
    value = 0x811C9DC5
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x01000193) & 0xFFFFFFFF
    return value


def choice_weighted(
    rng: np.random.Generator, items: Sequence, weights: Sequence[float]
):
    """Pick one element of ``items`` with the given (unnormalised) weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have the same length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    probabilities = np.asarray(weights, dtype=float) / total
    index = int(rng.choice(len(items), p=probabilities))
    return items[index]
