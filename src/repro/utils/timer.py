"""Lightweight wall-clock timing used for the response-time metric.

The paper reports *response time* as the average wall-clock time the platform
needs to process one request. The simulator wraps every dispatcher call in a
:class:`Stopwatch` and aggregates the samples in
:class:`repro.simulation.metrics.MetricsCollector`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch with context-manager support.

    Example:
        >>> watch = Stopwatch()
        >>> with watch:
        ...     _ = sum(range(1000))
        >>> watch.total_seconds >= 0.0
        True
    """

    total_seconds: float = 0.0
    laps: int = 0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> None:
        """Start a lap; raises if a lap is already running."""
        if self._started_at is not None:
            raise RuntimeError("Stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop the current lap and return its duration in seconds."""
        if self._started_at is None:
            raise RuntimeError("Stopwatch is not running")
        elapsed = time.perf_counter() - self._started_at
        self._started_at = None
        self.total_seconds += elapsed
        self.laps += 1
        return elapsed

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def mean_seconds(self) -> float:
        """Average lap duration in seconds (0.0 if no lap has finished)."""
        if self.laps == 0:
            return 0.0
        return self.total_seconds / self.laps

    def reset(self) -> None:
        """Discard all accumulated laps."""
        self.total_seconds = 0.0
        self.laps = 0
        self._started_at = None
