"""Shared utilities: geometry helpers, deterministic RNG plumbing, validation and timing."""

from repro.utils.geometry import Point, euclidean, manhattan, midpoint
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timer import Stopwatch
from repro.utils.validation import (
    require,
    require_non_negative,
    require_positive,
    require_probability,
)

__all__ = [
    "Point",
    "euclidean",
    "manhattan",
    "midpoint",
    "make_rng",
    "spawn_rngs",
    "Stopwatch",
    "require",
    "require_non_negative",
    "require_positive",
    "require_probability",
]
