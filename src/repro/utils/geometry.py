"""Planar geometry helpers used by the road-network model and spatial indexes.

The paper works on city road networks whose vertices carry latitude/longitude
coordinates. For the synthetic substitute networks we use planar coordinates in
metres, which keeps Euclidean distances directly comparable to edge lengths and
avoids geodesic corrections. The only property the algorithms rely on is that
the straight-line distance never exceeds the network shortest-path length, which
holds by construction in :mod:`repro.network.generators`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the plane, in metres.

    Attributes:
        x: horizontal coordinate in metres.
        y: vertical coordinate in metres.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_to(self, other: "Point") -> float:
        """Manhattan (L1) distance to ``other`` in metres."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two points in metres."""
    return a.distance_to(b)


def manhattan(a: Point, b: Point) -> float:
    """Manhattan distance between two points in metres."""
    return a.manhattan_to(b)


def midpoint(a: Point, b: Point) -> Point:
    """Midpoint of the segment ``a``–``b``."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def bounding_box(points: Iterable[Point]) -> tuple[float, float, float, float]:
    """Axis-aligned bounding box ``(min_x, min_y, max_x, max_y)`` of ``points``.

    Raises:
        ValueError: if ``points`` is empty.
    """
    iterator = iter(points)
    try:
        first = next(iterator)
    except StopIteration as exc:
        raise ValueError("bounding_box() requires at least one point") from exc
    min_x = max_x = first.x
    min_y = max_y = first.y
    for point in iterator:
        min_x = min(min_x, point.x)
        max_x = max(max_x, point.x)
        min_y = min(min_y, point.y)
        max_y = max(max_y, point.y)
    return (min_x, min_y, max_x, max_y)


def interpolate(a: Point, b: Point, fraction: float) -> Point:
    """Point at ``fraction`` of the way from ``a`` to ``b`` (0 → a, 1 → b)."""
    return Point(a.x + (b.x - a.x) * fraction, a.y + (b.y - a.y) * fraction)
