"""Declarative platform configuration: :class:`PlatformSpec`.

One validated value composes everything that used to be smeared across
``ScenarioConfig`` kwargs, ``DispatcherConfig`` knobs, engine strings and
``"sharded:<inner>"`` registry-name parsing:

* the **scenario** — city, workload, oracle acceleration, dynamics
  (:class:`~repro.workloads.scenarios.ScenarioConfig`);
* the **dispatcher** — algorithm, its knobs and the sharding layout
  (:class:`~repro.dispatch.registry.DispatcherSpec`);
* the **engine** — event kernel or the legacy request-stream loop.

A spec can be built fluently (:meth:`PlatformSpec.builder`), from plain data
(:meth:`PlatformSpec.from_dict`) or from a JSON/TOML file
(:meth:`PlatformSpec.from_file`); :meth:`PlatformSpec.to_dict` is the exact
inverse of ``from_dict`` (round-trip tested). ``MatchingService.from_spec``
and the experiment runners consume specs, so offline batch runs and online
serving are configured — and executed — identically.
"""

from __future__ import annotations

import dataclasses
import difflib
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any

from repro.dispatch.base import DispatcherConfig
from repro.dispatch.registry import DispatcherSpec, unknown_fields_error
from repro.exceptions import ConfigurationError
from repro.simulation.simulator import ENGINES as _ENGINES
from repro.workloads.scenarios import CITY_BUILDERS, FILE_CITY_PREFIX, ScenarioConfig

#: shared "unknown field(s) ... did you mean" error builder.
_unknown_keys_error = unknown_fields_error


def _scenario_from_dict(data: dict) -> ScenarioConfig:
    known = {scenario_field.name for scenario_field in fields(ScenarioConfig)}
    unknown = set(data) - known
    if unknown:
        raise _unknown_keys_error("scenario", unknown, known)
    return ScenarioConfig(**data)


@dataclass(frozen=True)
class PlatformSpec:
    """Complete, validated description of one matching platform.

    Attributes:
        scenario: city + workload + oracle settings.
        dispatcher: algorithm + knobs + sharding layout.
        engine: ``"event"`` (default) or ``"legacy"``.
        collect_completions: track waiting times / detour ratios of completed
            requests.
        cluster: serve through the multiprocess shard-worker cluster
            (:class:`~repro.cluster.service.ClusterMatchingService`) instead
            of the in-process facade; requires ``engine="event"``.
        cluster_max_pending: bounded-queue backpressure — deferred requests
            tolerated per shard worker before new requests are
            admission-rejected as ``saturated``.
        cluster_dispatch_timeout: seconds to wait for one shard-worker reply;
            each expiry burns one retry attempt before the worker is declared
            dead and its shard fails over to degraded in-process serving.
        cluster_retry_attempts: bounded retries per shard-worker pipe
            operation (transient errors and reply-timeout windows) before the
            worker is marked down.
        cluster_retry_backoff_s: base of the exponential retry backoff.
        cluster_max_restarts: respawn budget per shard worker; exhausted, the
            shard serves degraded (in-process) for the rest of the session.
        cluster_restart_delay_s: simulated seconds after a worker death
            before its respawn may be adopted.
    """

    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    dispatcher: DispatcherSpec = field(default_factory=DispatcherSpec)
    engine: str = "event"
    collect_completions: bool = True
    cluster: bool = False
    cluster_max_pending: int = 1024
    cluster_dispatch_timeout: float = 60.0
    cluster_retry_attempts: int = 3
    cluster_retry_backoff_s: float = 0.05
    cluster_max_restarts: int = 2
    cluster_restart_delay_s: float = 0.0

    # -------------------------------------------------------------- validation

    def validate(self) -> "PlatformSpec":
        """Check the composition; returns ``self`` so calls can be chained."""
        if self.engine not in _ENGINES:
            raise ConfigurationError(
                f"unknown engine {self.engine!r}; available: {_ENGINES}"
            )
        city = self.scenario.city
        if city.startswith(FILE_CITY_PREFIX):
            if not city[len(FILE_CITY_PREFIX):]:
                raise ConfigurationError(
                    f"city {city!r} names no file; use '{FILE_CITY_PREFIX}<path>'"
                )
        elif city not in CITY_BUILDERS:
            close = difflib.get_close_matches(
                city, sorted(CITY_BUILDERS), n=1, cutoff=0.4
            )
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            raise ConfigurationError(
                f"unknown city {city!r}; available: {sorted(CITY_BUILDERS)} "
                f"or '{FILE_CITY_PREFIX}<path>' for a GeoJSON/CSV extract{hint}"
            )
        self.dispatcher.validate()
        if self.engine == "legacy" and (
            self.scenario.cancellation_rate > 0.0 or self.scenario.shift_hours > 0.0
        ):
            raise ConfigurationError(
                "scenario dynamics (cancellation_rate, shift_hours) require "
                "engine='event'"
            )
        if self.cluster or self.dispatcher.cluster:
            if self.engine != "event":
                raise ConfigurationError("cluster serving requires engine='event'")
            if self.cluster_max_pending < 1:
                raise ConfigurationError(
                    f"cluster_max_pending must be >= 1, got {self.cluster_max_pending}"
                )
            if self.cluster_dispatch_timeout <= 0:
                raise ConfigurationError(
                    "cluster_dispatch_timeout must be positive, got "
                    f"{self.cluster_dispatch_timeout}"
                )
            if self.cluster_retry_attempts < 1:
                raise ConfigurationError(
                    "cluster_retry_attempts must be >= 1, got "
                    f"{self.cluster_retry_attempts}"
                )
            if self.cluster_retry_backoff_s < 0:
                raise ConfigurationError(
                    "cluster_retry_backoff_s must be >= 0, got "
                    f"{self.cluster_retry_backoff_s}"
                )
            if self.cluster_max_restarts < 0:
                raise ConfigurationError(
                    "cluster_max_restarts must be >= 0, got "
                    f"{self.cluster_max_restarts}"
                )
            if self.cluster_restart_delay_s < 0:
                raise ConfigurationError(
                    "cluster_restart_delay_s must be >= 0, got "
                    f"{self.cluster_restart_delay_s}"
                )
        return self

    # --------------------------------------------------------------- builders

    @staticmethod
    def builder() -> "PlatformSpecBuilder":
        """A fluent builder (``PlatformSpec.builder().city(...).build()``)."""
        return PlatformSpecBuilder()

    def with_overrides(self, **kwargs: Any) -> "PlatformSpec":
        """Copy with top-level fields replaced (``scenario=``, ``engine=``...)."""
        return replace(self, **kwargs).validate()

    def with_scenario(self, **scenario_fields: Any) -> "PlatformSpec":
        """Copy with scenario fields replaced."""
        return replace(
            self, scenario=self.scenario.with_overrides(**scenario_fields)
        ).validate()

    def with_dispatcher(self, **dispatcher_fields: Any) -> "PlatformSpec":
        """Copy with dispatcher spec fields replaced."""
        return replace(
            self, dispatcher=replace(self.dispatcher, **dispatcher_fields)
        ).validate()

    # ---------------------------------------------------------- materialising

    def dispatcher_config(self) -> DispatcherConfig:
        """The dispatcher knobs with scenario-derived defaults filled in."""
        return self.dispatcher.to_config(
            default_grid_cell_metres=self.scenario.grid_km * 1000.0
        )

    def build_dispatcher(self):
        """Materialise the dispatcher described by :attr:`dispatcher`."""
        return self.dispatcher.build(config=self.dispatcher_config())

    def build_instance(self, network=None, oracle=None):
        """Materialise the scenario into a URPSM instance.

        Passing a pre-built ``network``/``oracle`` lets sweeps reuse the
        expensive city construction.
        """
        from repro.workloads.scenarios import build_instance  # lazy: heavy deps

        return build_instance(self.scenario, network=network, oracle=oracle)

    # ------------------------------------------------------------ serialisation

    def to_dict(self) -> dict:
        """Plain-data representation (exact inverse of :meth:`from_dict`)."""
        return {
            "scenario": dataclasses.asdict(self.scenario),
            "dispatcher": self.dispatcher.to_dict(),
            "engine": self.engine,
            "collect_completions": self.collect_completions,
            "cluster": self.cluster,
            "cluster_max_pending": self.cluster_max_pending,
            "cluster_dispatch_timeout": self.cluster_dispatch_timeout,
            "cluster_retry_attempts": self.cluster_retry_attempts,
            "cluster_retry_backoff_s": self.cluster_retry_backoff_s,
            "cluster_max_restarts": self.cluster_max_restarts,
            "cluster_restart_delay_s": self.cluster_restart_delay_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PlatformSpec":
        """Build a validated spec from a plain mapping (JSON/TOML payloads)."""
        known = {
            "scenario",
            "dispatcher",
            "engine",
            "collect_completions",
            "cluster",
            "cluster_max_pending",
            "cluster_dispatch_timeout",
            "cluster_retry_attempts",
            "cluster_retry_backoff_s",
            "cluster_max_restarts",
            "cluster_restart_delay_s",
        }
        unknown = set(data) - known
        if unknown:
            raise _unknown_keys_error("platform spec", unknown, known)
        scenario_data = data.get("scenario", {})
        dispatcher_data = data.get("dispatcher", {})
        if not isinstance(scenario_data, dict):
            raise ConfigurationError("'scenario' must be a mapping of scenario fields")
        if not isinstance(dispatcher_data, dict):
            raise ConfigurationError("'dispatcher' must be a mapping of dispatcher fields")
        return cls(
            scenario=_scenario_from_dict(scenario_data),
            dispatcher=DispatcherSpec.from_dict(dispatcher_data),
            engine=data.get("engine", "event"),
            collect_completions=data.get("collect_completions", True),
            cluster=data.get("cluster", False),
            cluster_max_pending=data.get("cluster_max_pending", 1024),
            cluster_dispatch_timeout=data.get("cluster_dispatch_timeout", 60.0),
            cluster_retry_attempts=data.get("cluster_retry_attempts", 3),
            cluster_retry_backoff_s=data.get("cluster_retry_backoff_s", 0.05),
            cluster_max_restarts=data.get("cluster_max_restarts", 2),
            cluster_restart_delay_s=data.get("cluster_restart_delay_s", 0.0),
        ).validate()

    @classmethod
    def from_file(cls, path: str | Path) -> "PlatformSpec":
        """Load a spec from a ``.json`` or ``.toml`` file."""
        path = Path(path)
        suffix = path.suffix.lower()
        if suffix == ".json":
            data = json.loads(path.read_text(encoding="utf-8"))
        elif suffix == ".toml":
            import tomllib

            data = tomllib.loads(path.read_text(encoding="utf-8"))
        else:
            raise ConfigurationError(
                f"unsupported platform spec format {suffix!r} ({path}); "
                "use .json or .toml"
            )
        if not isinstance(data, dict):
            raise ConfigurationError(f"platform spec file {path} must contain a mapping")
        return cls.from_dict(data)

    def to_json(self, path: str | Path | None = None, indent: int = 2) -> str:
        """Serialise to JSON; also writes ``path`` when given."""
        payload = json.dumps(self.to_dict(), indent=indent) + "\n"
        if path is not None:
            Path(path).write_text(payload, encoding="utf-8")
        return payload


class PlatformSpecBuilder:
    """Fluent construction of a :class:`PlatformSpec`.

    Example::

        spec = (PlatformSpec.builder()
                .city("chengdu-like", seed=7)
                .workload(num_workers=50, num_requests=300)
                .dispatcher("pruneGreedyDP", batch_interval=4.0)
                .sharding(num_shards=4, strategy="kd")
                .engine("event")
                .build())
    """

    def __init__(self) -> None:
        self._scenario: dict[str, Any] = {}
        self._dispatcher: dict[str, Any] = {}
        self._algorithm: str | None = None
        self._engine = "event"
        self._collect_completions = True
        self._cluster = False
        self._cluster_max_pending = 1024
        self._cluster_dispatch_timeout = 60.0
        self._cluster_retry_attempts = 3
        self._cluster_retry_backoff_s = 0.05
        self._cluster_max_restarts = 2
        self._cluster_restart_delay_s = 0.0

    # ---------------------------------------------------------------- scenario

    def city(
        self, name: str, seed: int | None = None, city_seed: int | None = None
    ) -> "PlatformSpecBuilder":
        """Select the synthetic city (and optionally pin its seeds)."""
        self._scenario["city"] = name
        if seed is not None:
            self._scenario["seed"] = seed
        if city_seed is not None:
            self._scenario["city_seed"] = city_seed
        return self

    def workload(self, **scenario_fields: Any) -> "PlatformSpecBuilder":
        """Set workload / Table-5 scenario fields (``num_workers=...``, ...)."""
        known = {scenario_field.name for scenario_field in fields(ScenarioConfig)}
        unknown = set(scenario_fields) - known
        if unknown:
            raise _unknown_keys_error("scenario", unknown, known)
        self._scenario.update(scenario_fields)
        return self

    def oracle(
        self,
        precompute: str | None = None,
        use_hub_labels: bool | None = None,
        backend: str | None = None,
        artifact_dir: str | None = None,
    ) -> "PlatformSpecBuilder":
        """Configure the distance-oracle acceleration.

        ``backend`` selects a distance backend by name (``"auto"``,
        ``"apsp"``, ``"ch"``, ``"hub_labels"``, ``"dijkstra"``) and wins over
        the legacy ``precompute``/``use_hub_labels`` spellings.
        ``artifact_dir`` attaches the content-addressed preprocessing store
        (:mod:`repro.artifacts`), so precomputed backends load from disk
        when a build for the exact network is cached.
        """
        if precompute is not None:
            self._scenario["oracle_precompute"] = precompute
        if use_hub_labels is not None:
            self._scenario["use_hub_labels"] = use_hub_labels
        if backend is not None:
            self._scenario["oracle_backend"] = backend
        if artifact_dir is not None:
            self._scenario["oracle_artifact_dir"] = artifact_dir
        return self

    # -------------------------------------------------------------- dispatcher

    def dispatcher(self, algorithm: str | None = None, **knobs: Any) -> "PlatformSpecBuilder":
        """Select the algorithm (registry or ``sharded:<inner>`` name) + knobs."""
        if algorithm is not None:
            self._algorithm = algorithm
        known = {spec_field.name for spec_field in fields(DispatcherSpec)}
        unknown = set(knobs) - known
        if unknown:
            raise _unknown_keys_error("dispatcher spec", unknown, known)
        self._dispatcher.update(knobs)
        return self

    def sharding(
        self,
        num_shards: int,
        strategy: str | None = None,
        escalate_k: int | None = None,
    ) -> "PlatformSpecBuilder":
        """Enable spatial sharding with ``num_shards`` shards."""
        self._dispatcher["num_shards"] = num_shards
        self._dispatcher["sharded"] = True
        if strategy is not None:
            self._dispatcher["shard_strategy"] = strategy
        if escalate_k is not None:
            self._dispatcher["shard_escalate_k"] = escalate_k
        return self

    # ---------------------------------------------------------------- platform

    def engine(self, name: str) -> "PlatformSpecBuilder":
        """Select the simulation engine (``"event"`` or ``"legacy"``)."""
        self._engine = name
        return self

    def cluster(
        self,
        num_shards: int | None = None,
        max_pending: int | None = None,
        dispatch_timeout: float | None = None,
        retry_attempts: int | None = None,
        retry_backoff_s: float | None = None,
        max_restarts: int | None = None,
        restart_delay_s: float | None = None,
    ) -> "PlatformSpecBuilder":
        """Serve through the multiprocess shard-worker cluster.

        ``num_shards`` sets the worker-process count (it is the sharding K);
        omitted, the previously configured sharding layout is reused. The
        remaining knobs tune the self-healing layer (retry budget, respawn
        budget, adoption delay).
        """
        self._cluster = True
        if num_shards is not None:
            self._dispatcher["num_shards"] = num_shards
            self._dispatcher["sharded"] = True
        if max_pending is not None:
            self._cluster_max_pending = max_pending
        if dispatch_timeout is not None:
            self._cluster_dispatch_timeout = dispatch_timeout
        if retry_attempts is not None:
            self._cluster_retry_attempts = retry_attempts
        if retry_backoff_s is not None:
            self._cluster_retry_backoff_s = retry_backoff_s
        if max_restarts is not None:
            self._cluster_max_restarts = max_restarts
        if restart_delay_s is not None:
            self._cluster_restart_delay_s = restart_delay_s
        return self

    def collect_completions(self, flag: bool) -> "PlatformSpecBuilder":
        """Toggle completion bookkeeping (waits, detours)."""
        self._collect_completions = flag
        return self

    def build(self) -> PlatformSpec:
        """Assemble and validate the spec."""
        knobs = dict(self._dispatcher)
        sharded_flag = bool(knobs.pop("sharded", False))
        if self._algorithm is not None:
            parsed = DispatcherSpec.parse(self._algorithm)
            dispatcher = replace(
                parsed, sharded=parsed.sharded or sharded_flag, **knobs
            ).validate()
        else:
            dispatcher = DispatcherSpec(sharded=sharded_flag, **knobs).validate()
        return PlatformSpec(
            scenario=ScenarioConfig(**self._scenario),
            dispatcher=dispatcher,
            engine=self._engine,
            collect_completions=self._collect_completions,
            cluster=self._cluster,
            cluster_max_pending=self._cluster_max_pending,
            cluster_dispatch_timeout=self._cluster_dispatch_timeout,
            cluster_retry_attempts=self._cluster_retry_attempts,
            cluster_retry_backoff_s=self._cluster_retry_backoff_s,
            cluster_max_restarts=self._cluster_max_restarts,
            cluster_restart_delay_s=self._cluster_restart_delay_s,
        ).validate()


__all__ = ["PlatformSpec", "PlatformSpecBuilder"]
