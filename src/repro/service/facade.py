"""The online matching service facade.

:class:`MatchingService` inverts the batch-simulator architecture: instead of
a runner that owns a whole workload and replays it, the *service* owns the
simulation backend (event kernel or legacy loop), the fleet, the dispatcher
and the clock, and exposes an online session API:

* :meth:`MatchingService.submit` — one request in, one typed
  :class:`~repro.service.responses.AssignmentDecision` out;
* :meth:`MatchingService.cancel` — rider cancellation with a typed outcome;
* :meth:`MatchingService.add_worker` / :meth:`MatchingService.retire_worker`
  — live fleet changes;
* :meth:`MatchingService.advance_to` — move simulated time forward,
  processing everything that falls due (batch flushes, stop completions,
  shift changes);
* :meth:`MatchingService.drain` — close the session and return the full
  :class:`~repro.simulation.metrics.SimulationResult`;
* :meth:`MatchingService.snapshot` — point-in-time observability.

Offline batch runs are the same code path: :meth:`MatchingService.replay`
submits an instance's request stream one by one and drains — and is
metric-identical (served rate, unified cost, oracle counters) to the direct
:class:`~repro.simulation.simulator.Simulator` run on both engines, which the
service test-suite enforces for every registered dispatcher.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.instance import URPSMInstance
from repro.core.types import Request, Worker
from repro.dispatch.base import Dispatcher, DispatchOutcome
from repro.exceptions import ConfigurationError, DispatchError
from repro.network.graph import RoadNetwork
from repro.network.oracle import DistanceOracle
from repro.service.responses import (
    AssignmentDecision,
    CancellationOutcome,
    CancellationStatus,
    DecisionStatus,
    ServiceSnapshot,
)
from repro.service.spec import PlatformSpec
from repro.simulation.engine import EventEngine
from repro.simulation.metrics import SimulationResult
from repro.simulation.simulator import ENGINES, LegacyLoop


class MatchingService:
    """A long-lived online matching session over one city and fleet.

    Args:
        instance: the URPSM instance providing network, oracle, fleet and —
            for replay sessions — the request stream.
        dispatcher: the matching algorithm.
        engine: ``"event"`` (default; required for cancellations, shifts and
            live fleet events) or ``"legacy"`` (the seed's request loop).
        collect_completions: track waits / detour ratios of completions.
    """

    def __init__(
        self,
        instance: URPSMInstance,
        dispatcher: Dispatcher,
        *,
        engine: str = "event",
        collect_completions: bool = True,
    ) -> None:
        if engine not in ENGINES:
            raise ConfigurationError(f"unknown engine {engine!r}; available: {ENGINES}")
        self.engine = engine
        if engine == "event":
            self._backend = EventEngine(
                instance, dispatcher, collect_completions=collect_completions
            )
        else:
            self._backend = LegacyLoop(
                instance, dispatcher, collect_completions=collect_completions
            )
        self._backend.on_outcome = self._note_outcome
        if engine == "event":
            self._backend.on_cancellation = self._note_cancellation
        #: decisions produced but not yet handed to the caller (flush-resolved
        #: deferrals, plus the current submission until ``submit`` pops it).
        self._undelivered: dict[int, AssignmentDecision] = {}
        self._deferred_open: set[int] = set()
        self._submitted = 0
        self._network_updates_applied = 0
        self._result: SimulationResult | None = None
        self._backend.start()

    # ------------------------------------------------------------ construction

    @classmethod
    def from_spec(
        cls,
        spec: PlatformSpec,
        *,
        network: RoadNetwork | None = None,
        oracle: DistanceOracle | None = None,
    ) -> "MatchingService":
        """Build the whole platform (instance + dispatcher) from one spec.

        Specs with ``cluster=True`` build a
        :class:`~repro.cluster.service.ClusterMatchingService` (shard worker
        processes behind the same session API) instead of the in-process
        facade.
        """
        if (spec.cluster or spec.dispatcher.cluster) and cls is MatchingService:
            from repro.cluster.service import ClusterMatchingService  # lazy cycle guard

            return ClusterMatchingService.from_spec(spec, network=network, oracle=oracle)
        spec.validate()
        instance = spec.build_instance(network=network, oracle=oracle)
        return cls(
            instance,
            spec.build_dispatcher(),
            engine=spec.engine,
            collect_completions=spec.collect_completions,
        )

    # ---------------------------------------------------------------- plumbing

    def _note_outcome(self, outcome: DispatchOutcome, now: float) -> None:
        decision = AssignmentDecision.from_outcome(outcome, decided_at=now)
        self._undelivered[outcome.request.id] = decision
        self._deferred_open.discard(outcome.request.id)

    def _note_cancellation(self, request: Request, status: str, now: float) -> None:
        # a cancellation that pulled the request out of a batch window is the
        # terminal resolution of a still-open DEFERRED decision — including
        # dynamics-seeded cancellations the client never initiated
        if status != CancellationStatus.REMOVED_FROM_BATCH.value:
            return
        if request.id in self._deferred_open:
            self._deferred_open.discard(request.id)
            self._undelivered[request.id] = AssignmentDecision(
                request_id=request.id,
                status=DecisionStatus.CANCELLED,
                decided_at=now,
            )

    def _ensure_open(self) -> None:
        if self._result is not None:
            raise DispatchError("the service session has been drained")

    # ------------------------------------------------------------- session API

    def submit(self, request: Request) -> AssignmentDecision:
        """Submit one request and return the service's decision.

        Immediate dispatchers return an accepted/rejected decision; batch
        dispatchers return a *deferred* decision whose resolution surfaces
        through :meth:`poll_decisions` once the batch window flushes (during
        a later ``submit``/``advance_to``/``drain``).
        """
        self._ensure_open()
        self._backend.submit(request)
        self._submitted += 1
        decision = self._undelivered.pop(request.id, None)
        if decision is not None:
            return decision
        self._deferred_open.add(request.id)
        return AssignmentDecision(
            request_id=request.id,
            status=DecisionStatus.DEFERRED,
            decided_at=self.clock,
        )

    def poll_decisions(self) -> list[AssignmentDecision]:
        """Drain decisions resolved since the last call (batch flushes)."""
        drained = list(self._undelivered.values())
        self._undelivered.clear()
        return drained

    def cancel(self, request_id: int) -> CancellationOutcome:
        """Cancel a submitted request; returns what the cancellation achieved.

        Requires the event engine (the legacy loop has no cancellation
        semantics).
        """
        self._ensure_open()
        if self.engine != "event":
            raise ConfigurationError(
                "online cancellation requires engine='event'; the legacy loop "
                "replays dynamics-free streams only"
            )
        status = CancellationStatus(self._backend.cancel_request(request_id))
        return CancellationOutcome(
            request_id=request_id, status=status, cancelled_at=self.clock
        )

    def add_worker(self, worker: Worker) -> None:
        """Add a new worker to the live fleet at the current clock."""
        self._ensure_open()
        self._backend.add_worker(worker)

    def retire_worker(self, worker_id: int) -> None:
        """Stop assigning to a worker (its route in progress still completes)."""
        self._ensure_open()
        self._require_known_worker(worker_id)
        self._backend.set_worker_online(worker_id, False)

    def reinstate_worker(self, worker_id: int) -> None:
        """Bring a retired worker back on shift."""
        self._ensure_open()
        self._require_known_worker(worker_id)
        self._backend.set_worker_online(worker_id, True)

    def _require_known_worker(self, worker_id: int) -> None:
        if worker_id not in self.fleet.states:
            raise DispatchError(f"unknown worker id {worker_id}")

    def apply_network_update(self, mutate) -> None:
        """Mutate the road network mid-session (street closure / reopening).

        ``mutate`` receives the live :class:`~repro.network.graph.RoadNetwork`.
        The engine re-derives every distance-dependent structure afterwards —
        oracle backend, worker routes, dispatcher spatial index — so the
        session keeps serving on the new topology. Requires the event
        engine. On the cluster path, the recorded edge mutations are
        additionally broadcast to every shard worker process under a barrier
        acknowledgement (see
        :meth:`~repro.cluster.dispatcher.ClusterDispatcher.apply_network_update`).
        """
        self._ensure_open()
        if self.engine != "event":
            raise ConfigurationError(
                "live network updates require engine='event'; the legacy loop "
                "snapshots distances up front"
            )
        self._backend.apply_network_update(mutate)
        self._network_updates_applied += 1

    def close_edge(self, u: int, v: int):
        """Close the street between ``u`` and ``v``; returns the removed
        :class:`~repro.network.graph.Edge` (keep it to reopen later)."""
        removed = []
        self.apply_network_update(lambda network: removed.append(network.remove_edge(u, v)))
        return removed[0]

    def reopen_edge(self, edge) -> None:
        """Reopen a previously closed street from its removed ``edge`` record."""
        self.apply_network_update(
            lambda network: network.add_edge(
                edge.u, edge.v, length=edge.length, speed=edge.speed, road_class=edge.road_class
            )
        )

    def advance_to(self, now: float) -> list[AssignmentDecision]:
        """Advance simulated time to ``now``, processing everything due.

        Returns the decisions resolved while advancing (batch flushes that
        fell due), equivalent to calling :meth:`poll_decisions` right after.
        """
        self._ensure_open()
        self._backend.advance_until(now)
        return self.poll_decisions()

    def drain(self) -> SimulationResult:
        """Close the session: resolve pending batches, finish every route.

        Returns the aggregated :class:`SimulationResult`; subsequent calls
        return the same result, and all other session methods raise.
        """
        if self._result is None:
            self._result = self._backend.finish()
        return self._result

    def _queue_depth(self) -> int:
        """Dispatcher commands sent but not yet acknowledged.

        The in-process facade calls its dispatcher synchronously, so nothing
        is ever in flight; the cluster facade overrides this with the
        front door's outstanding-ack count.
        """
        return 0

    def _recovery_stats(self) -> dict:
        """Self-healing counters for :class:`ServiceSnapshot`.

        The in-process facade has no worker processes to fail; the cluster
        facade overrides this with the front door's recovery telemetry.
        """
        return {}

    def _requests_inflight(self) -> int:
        """Accepted riders not yet dropped off (open service records)."""
        fleet = self._backend.fleet
        return sum(
            1
            for state in fleet.states.values()
            for record in state.assigned_requests.values()
            if not record.completed
        )

    def snapshot(self) -> ServiceSnapshot:
        """Point-in-time view of the platform (no state mutation)."""
        fleet = self._backend.fleet
        live = self._backend.metrics.live
        online = sum(1 for state in fleet.states.values() if state.online)
        return ServiceSnapshot(
            clock=self.clock,
            engine=self.engine,
            algorithm=self.dispatcher.name,
            workers_total=len(fleet),
            workers_online=online,
            workers_idle=len(fleet.idle_snapshot),
            requests_submitted=self._submitted,
            decisions_pending=len(self._deferred_open) + len(self._undelivered),
            served=live.served_requests,
            rejected=live.rejected_requests,
            cancelled=live.cancelled_requests,
            events_processed=getattr(self._backend, "events_processed", 0),
            requests_inflight=self._requests_inflight(),
            queue_depth=self._queue_depth(),
            network_updates_applied=self._network_updates_applied,
            **self._recovery_stats(),
        )

    # ------------------------------------------------------------------ replay

    def replay(
        self,
        requests: Iterable[Request] | None = None,
        on_decision: Callable[[AssignmentDecision], None] | None = None,
    ) -> SimulationResult:
        """Stream a whole workload through the session and drain.

        Args:
            requests: the stream to replay (default: the instance's requests).
            on_decision: optional observer receiving every decision as it is
                made — submissions first, flush-resolved deferrals as they
                happen (the ``repro serve-replay`` printer).
        """
        self._ensure_open()
        stream = self.instance.requests if requests is None else requests
        for request in stream:
            decision = self.submit(request)
            if on_decision is not None:
                on_decision(decision)
                for resolved in self.poll_decisions():
                    on_decision(resolved)
        result = self.drain()
        if on_decision is not None:
            for resolved in self.poll_decisions():
                on_decision(resolved)
        return result

    # -------------------------------------------------------------- accessors

    @property
    def clock(self) -> float:
        """Current simulated time of the session."""
        return self._backend.clock

    @property
    def instance(self) -> URPSMInstance:
        """The problem instance backing the session."""
        return self._backend.instance

    @property
    def dispatcher(self) -> Dispatcher:
        """The matching algorithm."""
        return self._backend.dispatcher

    @property
    def fleet(self):
        """The live fleet state."""
        return self._backend.fleet

    @property
    def metrics(self):
        """The live metrics collector."""
        return self._backend.metrics

    @property
    def drained(self) -> bool:
        """Whether the session has been closed by :meth:`drain`."""
        return self._result is not None


def replay_workload(
    spec: PlatformSpec,
    *,
    network: RoadNetwork | None = None,
    oracle: DistanceOracle | None = None,
    on_decision: Callable[[AssignmentDecision], None] | None = None,
) -> SimulationResult:
    """Build a :class:`MatchingService` from ``spec`` and replay its workload.

    The one-call batch entry point: provably the same code path as online
    serving (it *is* online serving, fed from the generated stream).
    """
    service = MatchingService.from_spec(spec, network=network, oracle=oracle)
    return service.replay(on_decision=on_decision)


__all__ = ["MatchingService", "replay_workload"]
