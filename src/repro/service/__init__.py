"""Online matching service: the streaming front door of the reproduction.

The paper's unified insertion framework is an *online* algorithm — requests
arrive one at a time and are matched immediately. This package exposes it
that way:

* :class:`~repro.service.facade.MatchingService` — a long-lived session
  accepting submissions, cancellations and fleet events over time, returning
  typed decisions;
* :class:`~repro.service.spec.PlatformSpec` — one declarative, serialisable
  configuration composing city, workload, oracle, dispatcher, sharding and
  engine settings;
* :func:`~repro.service.facade.replay_workload` — the batch entry point,
  which simply streams a generated workload through a service session (batch
  and online runs are the same code path, metric-identical by construction
  and by test).
"""

from repro.service.facade import MatchingService, replay_workload
from repro.service.responses import (
    AssignmentDecision,
    CancellationOutcome,
    CancellationStatus,
    DecisionStatus,
    RejectionReason,
    ServiceSnapshot,
)
from repro.service.spec import PlatformSpec, PlatformSpecBuilder

__all__ = [
    "AssignmentDecision",
    "CancellationOutcome",
    "CancellationStatus",
    "DecisionStatus",
    "MatchingService",
    "PlatformSpec",
    "PlatformSpecBuilder",
    "RejectionReason",
    "ServiceSnapshot",
    "replay_workload",
]
