"""Typed responses of the online matching service.

Every interaction with :class:`~repro.service.facade.MatchingService` returns
a value instead of mutating internal state invisibly:

* :class:`AssignmentDecision` — what happened to a submitted request:
  accepted (with the assigned worker and the route delta), rejected (with a
  :class:`RejectionReason` code), or deferred into a batch window (resolved
  decisions surface later through ``MatchingService.poll_decisions``);
* :class:`CancellationOutcome` — what a cancellation achieved;
* :class:`ServiceSnapshot` — a point-in-time observability view of the
  platform (clock, fleet occupancy, decision counts).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dispatch.base import DispatchOutcome


class DecisionStatus(str, enum.Enum):
    """Lifecycle state of a submission's decision."""

    ACCEPTED = "accepted"
    REJECTED = "rejected"
    #: deferred into a batch window; the resolved decision arrives later via
    #: ``MatchingService.poll_decisions`` (or at :meth:`~repro.service.facade.
    #: MatchingService.drain`).
    DEFERRED = "deferred"
    #: a deferred request was withdrawn (rider cancellation) before its batch
    #: window flushed — the terminal resolution of a DEFERRED submission that
    #: never produced an assignment.
    CANCELLED = "cancelled"


class RejectionReason(str, enum.Enum):
    """Why a request was rejected (rejections are irrevocable)."""

    #: the reachability filter found no worker that could make the deadline.
    NO_CANDIDATES = "no_candidates"
    #: candidates existed but no feasible insertion satisfied deadline /
    #: capacity constraints on any route.
    NO_FEASIBLE_INSERTION = "no_feasible_insertion"
    #: the decision phase (Lemma 8 pruning / profitability) rejected the
    #: request before or instead of planning.
    DECISION_PHASE = "decision_phase"
    #: admission control rejected the request before it reached a planning
    #: phase — the target shard's command queue exceeded the cluster's
    #: bounded-queue backpressure limit.
    SATURATED = "saturated"


class CancellationStatus(str, enum.Enum):
    """What a cancellation achieved."""

    #: the request id was never submitted to this service.
    UNKNOWN_REQUEST = "unknown_request"
    #: still deferred inside a batch window — dropped before any assignment.
    REMOVED_FROM_BATCH = "removed_from_batch"
    #: assigned but not yet picked up — its stops were removed from the route.
    REMOVED_FROM_ROUTE = "removed_from_route"
    #: already picked up, delivered, or rejected — nothing to undo.
    TOO_LATE = "too_late"


@dataclass(frozen=True, slots=True)
class AssignmentDecision:
    """The service's decision for one submitted request.

    Attributes:
        request_id: the submitted request.
        status: accepted / rejected / deferred.
        decided_at: simulated time at which the decision was made.
        worker_id: assigned worker (accepted decisions only).
        route_delta: increase of the assigned worker's route cost caused by
            the insertion, in travel seconds (accepted decisions only).
        reason: rejection reason code (rejected decisions only).
        candidates_considered: workers examined while deciding.
        insertions_evaluated: insertion positions evaluated while deciding.
    """

    request_id: int
    status: DecisionStatus
    decided_at: float
    worker_id: int | None = None
    route_delta: float = 0.0
    reason: RejectionReason | None = None
    candidates_considered: int = 0
    insertions_evaluated: int = 0

    @classmethod
    def from_outcome(cls, outcome: DispatchOutcome, decided_at: float) -> "AssignmentDecision":
        """Lift a dispatcher :class:`DispatchOutcome` into a typed decision."""
        if outcome.served:
            status, reason = DecisionStatus.ACCEPTED, None
        else:
            status = DecisionStatus.REJECTED
            if outcome.rejection_reason is not None:
                reason = RejectionReason(outcome.rejection_reason)
            elif outcome.candidates_considered == 0:
                reason = RejectionReason.NO_CANDIDATES
            elif outcome.decision_rejected:
                reason = RejectionReason.DECISION_PHASE
            else:
                reason = RejectionReason.NO_FEASIBLE_INSERTION
        return cls(
            request_id=outcome.request.id,
            status=status,
            decided_at=decided_at,
            worker_id=outcome.worker_id,
            route_delta=outcome.increased_cost if outcome.served else 0.0,
            reason=reason,
            candidates_considered=outcome.candidates_considered,
            insertions_evaluated=outcome.insertions_evaluated,
        )

    @property
    def accepted(self) -> bool:
        """Whether the request was assigned to a worker."""
        return self.status is DecisionStatus.ACCEPTED

    @property
    def deferred(self) -> bool:
        """Whether the decision is still pending in a batch window."""
        return self.status is DecisionStatus.DEFERRED

    def describe(self) -> str:
        """One-line human-readable form (used by ``repro serve-replay``)."""
        prefix = f"t={self.decided_at:8.1f}s  request {self.request_id:>5}"
        if self.status is DecisionStatus.ACCEPTED:
            return (
                f"{prefix}  -> worker {self.worker_id} "
                f"(+{self.route_delta:.1f}s route delta, "
                f"{self.candidates_considered} candidates)"
            )
        if self.status is DecisionStatus.DEFERRED:
            return f"{prefix}  .. deferred to batch window"
        if self.status is DecisionStatus.CANCELLED:
            return f"{prefix}  !! cancelled before assignment"
        reason = self.reason.value if self.reason is not None else "unknown"
        return f"{prefix}  xx rejected ({reason})"


@dataclass(frozen=True, slots=True)
class CancellationOutcome:
    """Result of ``MatchingService.cancel``."""

    request_id: int
    status: CancellationStatus
    cancelled_at: float

    @property
    def cancelled(self) -> bool:
        """Whether the cancellation actually removed the request."""
        return self.status in (
            CancellationStatus.REMOVED_FROM_BATCH,
            CancellationStatus.REMOVED_FROM_ROUTE,
        )


@dataclass(frozen=True, slots=True)
class ServiceSnapshot:
    """Point-in-time observability view of a running service.

    ``workers_idle`` counts workers idle *as of their last materialisation*
    (the event engine advances workers lazily, so a worker whose route just
    finished may still be counted busy until it is next touched).

    The serving-observability counters are shared by both facades:
    ``decisions_pending`` — submissions deferred into batch windows whose
    decision has not resolved yet; ``requests_inflight`` — accepted riders
    not yet dropped off; ``queue_depth`` — requests queued towards shard
    worker processes awaiting a decision (always 0 for the in-process
    facade, whose dispatcher calls are synchronous).

    The recovery counters describe the cluster facade's self-healing layer
    (always 0 / empty for the in-process facade): ``worker_failures`` —
    shard worker processes marked down; ``worker_restarts`` — respawned
    workers adopted back; ``retries`` — transient RPC errors and reply
    timeouts retried; ``degraded_dispatches`` — requests resolved in-process
    at the front door while their shard was down; ``shard_health`` — current
    per-shard serving path, shard-id order (``up``/``recovering``/
    ``degraded``).

    The network-update counters describe live topology mutations:
    ``network_updates_applied`` — close/reopen batches applied through
    :meth:`~repro.service.facade.MatchingService.apply_network_update` (both
    facades); ``update_ack_retries`` — retries burned collecting update
    barrier acknowledgements from shard workers; ``shard_replica_rebuilds``
    — per-shard count of acknowledged replica network rebuilds (broadcasts
    plus adoption replays), shard-id order (cluster facade only).
    """

    clock: float
    engine: str
    algorithm: str
    workers_total: int
    workers_online: int
    workers_idle: int
    requests_submitted: int
    decisions_pending: int
    served: int
    rejected: int
    cancelled: int
    events_processed: int = 0
    requests_inflight: int = 0
    queue_depth: int = 0
    worker_failures: int = 0
    worker_restarts: int = 0
    retries: int = 0
    degraded_dispatches: int = 0
    shard_health: tuple[str, ...] = ()
    network_updates_applied: int = 0
    update_ack_retries: int = 0
    shard_replica_rebuilds: tuple[int, ...] = ()


__all__ = [
    "AssignmentDecision",
    "CancellationOutcome",
    "CancellationStatus",
    "DecisionStatus",
    "RejectionReason",
    "ServiceSnapshot",
]
