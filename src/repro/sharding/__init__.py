"""Horizontal scaling subsystem: spatial shards and per-shard dispatching.

The monolithic dispatchers of :mod:`repro.dispatch` see the whole city on
every request. This package splits the road network into K balanced spatial
shards (:class:`~repro.sharding.partitioner.SpatialPartitioner`), runs one
inner dispatcher per shard over a restricted fleet view
(:class:`~repro.sharding.fleet_view.ShardFleetView`), and routes every
request to its origin shard first, escalating to neighbouring shards — and
finally globally — only when the local shard cannot serve it
(:class:`~repro.sharding.dispatcher.ShardedDispatcher`).
"""

from repro.sharding.dispatcher import ShardedDispatcher
from repro.sharding.fleet_view import ShardFleetView
from repro.sharding.partitioner import Partition, SpatialPartitioner, STRATEGIES

__all__ = [
    "Partition",
    "SpatialPartitioner",
    "STRATEGIES",
    "ShardFleetView",
    "ShardedDispatcher",
]
