"""Sharded dispatching: one inner dispatcher per spatial shard + escalation.

:class:`ShardedDispatcher` implements the full :class:`~repro.dispatch.base.
Dispatcher` interface (immediate dispatch, the batch flush/cancel protocol,
memory accounting) by composition:

* at :meth:`setup` it cuts the road network into K shards with a
  :class:`~repro.sharding.partitioner.SpatialPartitioner`, buckets every
  worker into the shard containing its current position, and sets up one
  *inner* dispatcher (any registry algorithm — ``pruneGreedyDP``, ``tshare``,
  ``batch``, ...) per shard over a
  :class:`~repro.sharding.fleet_view.ShardFleetView`;
* each request is dispatched to the shard containing its origin. When that
  shard finds no feasible insertion, the request **escalates** to the
  ``escalate_k`` nearest neighbouring shards (adjacent shards ordered by
  centroid distance), and finally to every remaining shard — so a request is
  only rejected once the whole fleet has been considered;
* workers are **re-bucketed** whenever their materialised position crosses a
  shard border (the dispatcher, not the views, maintains the per-shard grid
  indexes: leaving a shard removes the worker from that shard's grid).

With ``num_shards=1`` the wrapper is exact: one shard covers the city, every
request is local, and the inner dispatcher observes the same fleet, grid
content and oracle state as it would unsharded — served rate, unified cost
and oracle counters reproduce the unsharded run bit for bit.

Observability: per-shard oracle-counter deltas are recorded around every
inner call and **aggregated** with :meth:`~repro.network.oracle.
OracleCounters.merge` into fleet-wide totals (rather than letting the last
shard overwrite shared keys); they surface — together with local-hit /
escalation / cross-shard-assignment counters — through
:meth:`extra_metrics` into ``SimulationResult.extra`` and the report tables.

Batch-style inner dispatchers are supported through the batch protocol
(deferred requests accumulate in their origin shard's window; flushes drain
every due shard). Escalation applies to immediate outcomes only — a batch
window's failed assignments are final, as they already saw the shard-local
fleet at flush time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

from repro.core.types import Request
from repro.dispatch.base import Dispatcher, DispatcherConfig, DispatchOutcome
from repro.exceptions import ConfigurationError
from repro.network.oracle import OracleCounters
from repro.sharding.fleet_view import ShardFleetView
from repro.sharding.partitioner import Partition, SpatialPartitioner

if TYPE_CHECKING:
    from repro.core.instance import URPSMInstance
    from repro.simulation.fleet import FleetState


@dataclass
class _Shard:
    """One shard: its inner dispatcher, fleet view and attribution counters."""

    shard_id: int
    dispatcher: Dispatcher
    view: ShardFleetView
    counters: OracleCounters = field(default_factory=OracleCounters)
    dispatch_calls: int = 0
    #: shard-local oracle when ``shard_oracle_backend != "shared"`` (shared
    #: across shards that resolved to the same backend); counter deltas are
    #: taken against it instead of the instance's oracle.
    oracle: "object | None" = None


class ShardedDispatcher(Dispatcher):
    """Routes requests to spatial shards, escalating when a shard cannot serve.

    Args:
        config: shared dispatcher knobs; ``num_shards``, ``shard_strategy``
            and ``shard_escalate_k`` parameterise the sharding (overridable
            via the keyword arguments below).
        inner: registry name of the per-shard algorithm, or a factory
            ``config -> Dispatcher``.
        num_shards: override ``config.num_shards``.
        strategy: override ``config.shard_strategy``.
        escalate_k: override ``config.shard_escalate_k``.
    """

    name = "sharded"

    def __init__(
        self,
        config: DispatcherConfig | None = None,
        inner: str | Callable[[DispatcherConfig], Dispatcher] = "pruneGreedyDP",
        num_shards: int | None = None,
        strategy: str | None = None,
        escalate_k: int | None = None,
    ) -> None:
        super().__init__(config)
        if isinstance(inner, str) and inner.startswith("sharded"):
            raise ConfigurationError("nested sharding is not supported")
        self.inner = inner
        self.num_shards = num_shards if num_shards is not None else self.config.num_shards
        self.strategy = strategy if strategy is not None else self.config.shard_strategy
        self.escalate_k = (
            escalate_k if escalate_k is not None else self.config.shard_escalate_k
        )
        if self.num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {self.num_shards}")
        inner_label = inner if isinstance(inner, str) else getattr(inner, "__name__", "custom")
        self.name = f"sharded:{inner_label}"
        self.partition: Partition | None = None
        self._shards: list[_Shard] = []
        self._membership: dict[int, int] = {}
        #: shard-local oracles by resolved backend name (one build per
        #: backend, shared by the shards that resolved to it)
        self._shard_oracles: dict[str, "object"] = {}
        # escalation / routing counters (surfaced via extra_metrics)
        self.local_hits = 0
        self.escalations = 0
        self.cross_shard_assignments = 0
        self.global_fallbacks = 0
        self.rejections = 0
        self.cross_shard_moves = 0
        self.requires_exact_positions = self._resolve_requires_exact_positions()

    # ------------------------------------------------------------- lifecycle

    def setup(self, instance: "URPSMInstance", fleet: "FleetState") -> None:
        """Partition the city, bucket the fleet, and set up one dispatcher per shard."""
        self.instance = instance
        self.fleet = fleet
        self.oracle = instance.oracle
        self.partition = SpatialPartitioner(self.num_shards, self.strategy).partition(
            instance.network
        )
        memberships: list[set[int]] = [set() for _ in range(self.num_shards)]
        self._membership = {}
        self._shard_oracles = {}
        for worker_id in fleet.states:
            shard_id = self.partition.shard_of_vertex(fleet.peek_state(worker_id).position)
            self._membership[worker_id] = shard_id
            memberships[shard_id].add(worker_id)
        self._shards = []
        shared_vertex_cells = None
        for shard_id in range(self.num_shards):
            inner = self._make_inner()
            inner.shared_vertex_cells = shared_vertex_cells
            shard_oracle = self._make_shard_oracle(instance)
            view = ShardFleetView(
                fleet, shard_id, memberships[shard_id], oracle=shard_oracle
            )
            inner.setup(instance, view)
            if shared_vertex_cells is None:
                shared_vertex_cells = inner.grid.vertex_cells
            if self._flush_scheduler is not None:
                inner.bind_flush_scheduler(self._flush_scheduler)
            shard = _Shard(shard_id, inner, inner.fleet)
            shard.oracle = shard_oracle
            self._shards.append(shard)
        self.requires_exact_positions = self.num_shards > 1 or any(
            shard.dispatcher.requires_exact_positions for shard in self._shards
        )

    def _make_shard_oracle(self, instance: "URPSMInstance"):
        """A shard-local oracle, or ``None`` in the default shared mode.

        A shard-local oracle answers over the **full** network (escalated
        requests still need cross-shard distances, and full-network answers
        keep every backend value-exact with the shared oracle), so the
        ``"auto"`` size policy consults the full vertex count — the graph
        the index is actually built on — while the shard's expected share of
        the query volume supplies the locality signal (a shard expecting a
        trickle of requests keeps the cheap Dijkstra fallback instead of
        amortising a build it will never pay off). Shards resolving to the
        same backend share one oracle — one build, not K — with per-shard
        attribution handled by the counter deltas around each inner call.
        """
        mode = self.config.shard_oracle_backend
        if mode == "shared":
            return None
        from repro.network.backends import select_backend_name  # lazy import cycle guard
        from repro.network.oracle import DistanceOracle

        if mode == "auto":
            hint = max(1, len(instance.requests) // max(1, self.num_shards))
            mode = select_backend_name(
                instance.network.csr.num_vertices, query_volume_hint=hint
            )
        oracle = self._shard_oracles.get(mode)
        if oracle is None:
            oracle = DistanceOracle(instance.network, backend=mode)
            self._shard_oracles[mode] = oracle
        return oracle

    def _make_inner(self) -> Dispatcher:
        if callable(self.inner):
            return self.inner(self.config)
        from repro.dispatch import make_dispatcher  # lazy: avoids an import cycle

        return make_dispatcher(self.inner, self.config)

    def _resolve_requires_exact_positions(self) -> bool:
        # Routing by shard is position-dependent the same way tshare's cell
        # walk is: which grid a worker sits in decides which shard answers
        # first, so lazy (stale) positions would make results depend on the
        # advancement regime. K>1 therefore materialises the fleet before
        # every interaction; K=1 inherits the inner algorithm's requirement.
        if self.num_shards > 1:
            return True
        if not isinstance(self.inner, str):
            return False  # refreshed from the actual instances at setup
        from repro.dispatch import ALGORITHMS  # lazy: avoids an import cycle

        inner_class = ALGORITHMS.get(self.inner)
        return bool(inner_class is not None and inner_class.requires_exact_positions)

    def bind_flush_scheduler(self, schedule) -> None:
        """Forward the engine's flush scheduler to every shard dispatcher."""
        super().bind_flush_scheduler(schedule)
        for shard in self._shards:
            shard.dispatcher.bind_flush_scheduler(schedule)

    def notify_worker_added(self, worker_id: int) -> None:
        """Bucket a newly added worker into the shard containing its position."""
        assert self.partition is not None and self.fleet is not None
        position = self.fleet.peek_state(worker_id).position
        shard_id = self.partition.shard_of_vertex(position)
        self._membership[worker_id] = shard_id
        shard = self._shards[shard_id]
        shard.view.members.add(worker_id)
        shard.dispatcher.grid.insert(worker_id, position)

    def notify_network_changed(self) -> None:
        """Refresh shard-local oracles and every inner dispatcher's grid.

        The spatial partition itself is coordinate-based and closures do not
        move vertices, so worker-to-shard membership stays valid; only the
        distance machinery and the per-shard grid indexes need re-deriving.
        The instance's shared oracle was already refreshed by the engine.
        """
        for oracle in self._shard_oracles.values():
            oracle.refresh_topology()
        for shard in self._shards:
            shard.dispatcher.notify_network_changed()

    # --------------------------------------------------------------- running

    def dispatch(self, request: Request, now: float) -> DispatchOutcome | None:
        assert self.partition is not None and self.fleet is not None
        self._resync()
        home = self.partition.shard_of_vertex(request.origin)
        outcome = self._dispatch_to(home, request, now)
        if outcome is None:
            return None  # deferred into the home shard's batch window
        if outcome.served:
            self.local_hits += 1
            return outcome
        if self.num_shards == 1:
            self.rejections += 1
            return outcome
        return self._escalate(request, now, home, outcome)

    def _escalate(
        self, request: Request, now: float, home: int, local: DispatchOutcome
    ) -> DispatchOutcome:
        """Retry the request on neighbouring shards, then globally."""
        self.escalations += 1
        neighbours, remaining = self._escalation_targets(request, home)
        candidates = local.candidates_considered
        insertions = local.insertions_evaluated
        decision_rejected = local.decision_rejected
        last = local
        for phase, shard_ids in enumerate((neighbours, remaining)):
            if phase == 1 and shard_ids:
                self.global_fallbacks += 1
            for shard_id in shard_ids:
                attempt = self._dispatch_to(shard_id, request, now)
                assert attempt is not None  # immediate dispatchers only get here
                candidates += attempt.candidates_considered
                insertions += attempt.insertions_evaluated
                decision_rejected = decision_rejected and attempt.decision_rejected
                last = attempt
                if attempt.served:
                    self.cross_shard_assignments += 1
                    return replace(
                        attempt,
                        candidates_considered=candidates,
                        insertions_evaluated=insertions,
                    )
        self.rejections += 1
        return replace(
            last,
            candidates_considered=candidates,
            insertions_evaluated=insertions,
            decision_rejected=decision_rejected,
        )

    def _escalation_targets(self, request: Request, home: int) -> tuple[list[int], list[int]]:
        """Shard ids to try after ``home``: nearest neighbours, then the rest."""
        partition = self.partition
        assert partition is not None
        csr = partition.network.csr
        origin_position = csr.position_of(request.origin)
        ordered = [
            int(shard_id)
            for shard_id in partition.shards_by_distance(
                float(csr.xs[origin_position]), float(csr.ys[origin_position])
            )
            if int(shard_id) != home
        ]
        adjacent = partition.shard_adjacency[home]
        neighbours = [s for s in ordered if s in adjacent][: self.escalate_k]
        remaining = [s for s in ordered if s not in neighbours]
        return neighbours, remaining

    def _dispatch_to(self, shard_id: int, request: Request, now: float) -> DispatchOutcome | None:
        shard = self._shards[shard_id]
        shard.dispatch_calls += 1
        with self._attribute_counters(shard):
            return shard.dispatcher.dispatch(request, now)

    # ------------------------------------------------------- batch protocol

    @property
    def is_batched(self) -> bool:
        """Whether the inner dispatchers defer requests to periodic flushes."""
        if self._shards:
            return self._shards[0].dispatcher.is_batched
        if isinstance(self.inner, str):
            from repro.dispatch import ALGORITHMS, BatchDispatcher  # lazy

            inner_class = ALGORITHMS.get(self.inner)
            return bool(inner_class is not None and issubclass(inner_class, BatchDispatcher))
        return False

    def next_flush_time(self) -> float | None:
        """Earliest pending flush across all shards."""
        times = [
            time
            for shard in self._shards
            if (time := shard.dispatcher.next_flush_time()) is not None
        ]
        return min(times) if times else None

    def flush(self, now: float) -> list[DispatchOutcome]:
        """Flush every shard whose batch window is due."""
        self._resync()
        outcomes: list[DispatchOutcome] = []
        for shard in self._shards:
            next_flush = shard.dispatcher.next_flush_time()
            if next_flush is not None and next_flush <= now + 1e-9:
                with self._attribute_counters(shard):
                    outcomes.extend(shard.dispatcher.flush(now))
        for outcome in outcomes:
            if outcome.served:
                self.local_hits += 1
            else:
                self.rejections += 1
        return outcomes

    def cancel(self, request: Request) -> bool:
        """Drop a deferred request from whichever shard window holds it."""
        return any(shard.dispatcher.cancel(request) for shard in self._shards)

    # --------------------------------------------------------------- helpers

    def _resync(self) -> None:
        """Re-bucket moved workers and maintain the per-shard grid indexes.

        Uses the same materialised positions an unsharded ``sync_grid`` would
        (``peek_state``): crossing a shard border moves the worker between
        views and between grids; moving inside a shard is a plain grid update.
        """
        fleet = self.fleet
        partition = self.partition
        assert fleet is not None and partition is not None
        for worker_id in fleet.drain_moved():
            position = fleet.peek_state(worker_id).position
            shard_id = partition.shard_of_vertex(position)
            previous = self._membership[worker_id]
            if shard_id != previous:
                old = self._shards[previous]
                old.view.members.discard(worker_id)
                old.dispatcher.grid.remove(worker_id)
                self._membership[worker_id] = shard_id
                self._shards[shard_id].view.members.add(worker_id)
                self.cross_shard_moves += 1
            self._shards[shard_id].dispatcher.grid.update(worker_id, position)

    def _attribute_counters(self, shard: _Shard):
        """Context manager attributing oracle-counter deltas to ``shard``.

        The delta is taken against whichever oracle the shard's inner
        dispatcher actually queries — the shared instance oracle, or the
        shard-local one.
        """
        live = shard.oracle.counters if shard.oracle is not None else self.oracle.counters
        return _CounterAttribution(live, shard.counters)

    # --------------------------------------------------------------- metrics

    def memory_estimate_bytes(self) -> int:
        """Sum of the per-shard grid index footprints."""
        return sum(shard.dispatcher.memory_estimate_bytes() for shard in self._shards)

    def shard_counter_totals(self) -> OracleCounters:
        """Fleet-wide oracle work done inside shard dispatchers (merged)."""
        return OracleCounters.merge(shard.counters for shard in self._shards)

    def oracle_counter_totals(self) -> OracleCounters | None:
        """Headline totals folding the shard-local oracles' work back in.

        Without shard-local oracles every query already lands on the
        instance's oracle and ``None`` keeps the default reporting path
        (bit-exact with the unsharded run). With them, the decision-phase
        queries live on the shard oracles, so the merged total keeps
        ``SimulationResult.distance_queries`` honest; the shared oracle's
        caches stay attached for the cache statistics.
        """
        if not self._shard_oracles:
            return None
        shared = self.oracle.counters
        total = OracleCounters.merge(
            [shared] + [oracle.counters for oracle in self._shard_oracles.values()]
        )
        total.distance_cache = shared.distance_cache
        total.path_cache = shared.path_cache
        total.backend = shared.backend
        total.cache_bypassed = shared.cache_bypassed
        return total

    def extra_metrics(self) -> dict[str, float]:
        """Routing counters + merged per-shard oracle totals for ``extra``."""
        assert self.partition is not None
        merged = self.shard_counter_totals()
        extra = {
            "sharding_shards": float(self.num_shards),
            "sharding_local_hits": float(self.local_hits),
            "sharding_escalations": float(self.escalations),
            "sharding_cross_shard_assignments": float(self.cross_shard_assignments),
            "sharding_global_fallbacks": float(self.global_fallbacks),
            "sharding_rejections": float(self.rejections),
            "sharding_cross_shard_moves": float(self.cross_shard_moves),
            "sharding_boundary_vertices": float(self.partition.num_boundary_vertices()),
            "sharding_distance_queries": float(merged.distance_queries),
            "sharding_lower_bound_queries": float(merged.lower_bound_queries),
            "sharding_dijkstra_runs": float(merged.dijkstra_runs),
        }
        for shard in self._shards:
            extra[f"sharding_shard{shard.shard_id}_distance_queries"] = float(
                shard.counters.distance_queries
            )
            if shard.oracle is not None:
                extra[f"sharding_shard{shard.shard_id}_oracle_backend"] = (
                    shard.oracle.backend_name
                )
        return extra


class _CounterAttribution:
    """Records the delta of the live oracle counters into a shard's counters."""

    __slots__ = ("_live", "_target", "_before", "_before_backend")

    def __init__(self, live: OracleCounters, target: OracleCounters) -> None:
        self._live = live
        self._target = target

    def __enter__(self) -> None:
        live = self._live
        self._before = (
            live.distance_queries,
            live.path_queries,
            live.lower_bound_queries,
            live.dijkstra_runs,
        )
        self._before_backend = (
            dict(live.backend_queries),
            dict(live.backend_settled),
        )

    def __exit__(self, *exc_info) -> None:
        live, target = self._live, self._target
        distance, path, lower_bound, dijkstra = self._before
        target.distance_queries += live.distance_queries - distance
        target.path_queries += live.path_queries - path
        target.lower_bound_queries += live.lower_bound_queries - lower_bound
        target.dijkstra_runs += live.dijkstra_runs - dijkstra
        queries_before, settled_before = self._before_backend
        for name, value in live.backend_queries.items():
            delta = value - queries_before.get(name, 0)
            if delta:
                target.backend_queries[name] = target.backend_queries.get(name, 0) + delta
        for name, value in live.backend_settled.items():
            delta = value - settled_before.get(name, 0)
            if delta:
                target.backend_settled[name] = target.backend_settled.get(name, 0) + delta
