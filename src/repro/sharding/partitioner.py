"""Spatial partitioning of a road network into K balanced shards.

A :class:`Partition` assigns every vertex of a :class:`~repro.network.graph.
RoadNetwork` to exactly one of ``K`` shards. Two strategies are provided, both
operating on the network's CSR coordinate arrays (vectorized passes, no
per-vertex Point arithmetic):

* ``"grid"`` — *quantile-aligned grid quadrants*: the x axis is cut into
  ``C`` strips holding equally many vertices, and each strip is cut into
  ``R`` cells the same way along y, with ``C * R = K``. This is the grid
  analogue of the paper's uniform index, rebalanced so dense downtown cells
  do not end up holding most of the city.
* ``"kd"`` — recursive KD splits: the vertex set is halved along its wider
  coordinate axis (counts proportional to the shard budget of each side),
  which supports any ``K`` and adapts to anisotropic cities.

Both strategies are deterministic (stable sorts, ties broken by CSR
position) and produce shards whose sizes differ by at most one vertex per
split level. Every split is recorded in a binary *split tree* so arbitrary
coordinates — not only vertices — can be assigned to a shard in O(log K)
(:meth:`Partition.shard_of_point`); the grid index uses this lookup to label
cells and the sharded dispatcher to bucket workers. Vertices that share the
exact cut coordinate may sit on either side of a quantile split, so for
vertices the authoritative lookup is :meth:`Partition.shard_of_vertex`.

The partition also derives, from the CSR adjacency:

* per-shard **vertex masks** (boolean arrays over CSR positions) and vertex
  id lists;
* **boundary vertex sets** — vertices with at least one edge into another
  shard (where cross-shard traffic crosses);
* the **shard adjacency** graph induced by boundary edges;
* per-shard **centroids**, used to order escalation targets by proximity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.network.graph import RoadNetwork, Vertex

#: partitioning strategies accepted by :class:`SpatialPartitioner`.
STRATEGIES = ("grid", "kd")


@dataclass(frozen=True, slots=True)
class _Split:
    """One binary node of the split tree; ``coordinate <= threshold`` goes left.

    Leaves are plain shard identifiers (``int``), so a K=1 tree is just ``0``.
    """

    axis: int  # 0 = x, 1 = y
    threshold: float
    left: "_Split | int"
    right: "_Split | int"


class Partition:
    """Assignment of every network vertex to one of ``num_shards`` shards."""

    def __init__(
        self,
        network: RoadNetwork,
        strategy: str,
        num_shards: int,
        shard_of_position: np.ndarray,
        split_tree: "_Split | int",
    ) -> None:
        self.network = network
        self.strategy = strategy
        self.num_shards = num_shards
        self.shard_of_position = shard_of_position
        self._split_tree = split_tree
        csr = network.csr
        self._csr = csr

        # sizes + centroids (escalation ordering)
        self.sizes = np.bincount(shard_of_position, minlength=num_shards)
        self.centroids = np.zeros((num_shards, 2), dtype=np.float64)
        for shard in range(num_shards):
            mask = shard_of_position == shard
            if mask.any():
                self.centroids[shard, 0] = float(csr.xs[mask].mean())
                self.centroids[shard, 1] = float(csr.ys[mask].mean())

        # boundary vertices + shard adjacency from cross-shard CSR edges
        degrees = np.diff(csr.indptr)
        edge_sources = np.repeat(np.arange(csr.num_vertices, dtype=np.int64), degrees)
        source_shards = shard_of_position[edge_sources]
        target_shards = shard_of_position[csr.indices]
        crossing = source_shards != target_shards
        self._boundary_mask = np.zeros(csr.num_vertices, dtype=bool)
        self._boundary_mask[edge_sources[crossing]] = True
        self.shard_adjacency: list[set[int]] = [set() for _ in range(num_shards)]
        for source, target in zip(
            source_shards[crossing].tolist(), target_shards[crossing].tolist()
        ):
            self.shard_adjacency[source].add(target)

    # ------------------------------------------------------------------ lookup

    def shard_of_vertex(self, vertex: Vertex) -> int:
        """Shard holding ``vertex`` (the authoritative per-vertex lookup)."""
        return int(self.shard_of_position[self._csr.position_of(vertex)])

    def shards_of_vertices(self, vertices) -> np.ndarray:
        """Vectorized ``vertex id -> shard`` translation."""
        return self.shard_of_position[self._csr.positions_of(vertices)]

    def shard_of_point(self, x: float, y: float) -> int:
        """Shard of an arbitrary coordinate, via the recorded split tree.

        Agrees with :meth:`shard_of_vertex` everywhere except for vertices
        that share the exact cut coordinate of a quantile split (those may
        have been balanced onto the other side).
        """
        node = self._split_tree
        while not isinstance(node, int):
            coordinate = x if node.axis == 0 else y
            node = node.left if coordinate <= node.threshold else node.right
        return node

    # ------------------------------------------------------------------ shards

    def vertex_mask(self, shard: int) -> np.ndarray:
        """Boolean mask over CSR positions of the vertices in ``shard``."""
        self._check_shard(shard)
        return self.shard_of_position == shard

    def vertices_in_shard(self, shard: int) -> np.ndarray:
        """Vertex identifiers of ``shard`` (ascending)."""
        return self._csr.vertex_ids[self.vertex_mask(shard)]

    def boundary_vertices(self, shard: int) -> np.ndarray:
        """Vertices of ``shard`` with at least one edge into another shard."""
        self._check_shard(shard)
        mask = self._boundary_mask & (self.shard_of_position == shard)
        return self._csr.vertex_ids[mask]

    def num_boundary_vertices(self) -> int:
        """Total number of boundary vertices across all shards."""
        return int(self._boundary_mask.sum())

    def shards_by_distance(self, x: float, y: float) -> np.ndarray:
        """All shard ids ordered by centroid distance to ``(x, y)`` (stable)."""
        deltas = self.centroids - np.array([x, y], dtype=np.float64)
        return np.argsort(np.hypot(deltas[:, 0], deltas[:, 1]), kind="stable")

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.num_shards:
            raise ConfigurationError(
                f"unknown shard {shard}; partition has {self.num_shards} shards"
            )

    # -------------------------------------------------------------- statistics

    def statistics(self) -> dict[str, float]:
        """Balance and boundary statistics of the partition."""
        sizes = self.sizes.astype(float)
        return {
            "shards": float(self.num_shards),
            "min_shard_vertices": float(sizes.min()) if sizes.size else 0.0,
            "max_shard_vertices": float(sizes.max()) if sizes.size else 0.0,
            "boundary_vertices": float(self.num_boundary_vertices()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Partition(strategy={self.strategy!r}, shards={self.num_shards}, "
            f"sizes={self.sizes.tolist()})"
        )


class SpatialPartitioner:
    """Cuts a road network into ``num_shards`` balanced spatial shards.

    Args:
        num_shards: K, the number of shards (>= 1).
        strategy: ``"grid"`` (quantile-aligned grid quadrants) or ``"kd"``
            (recursive splits along the wider axis).
    """

    def __init__(self, num_shards: int, strategy: str = "grid") -> None:
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown sharding strategy {strategy!r}; available: {STRATEGIES}"
            )
        self.num_shards = num_shards
        self.strategy = strategy

    def partition(self, network: RoadNetwork) -> Partition:
        """Partition ``network``; raises when K exceeds the vertex count."""
        csr = network.csr
        if csr.num_vertices < self.num_shards:
            raise ConfigurationError(
                f"cannot cut {csr.num_vertices} vertices into {self.num_shards} shards"
            )
        shard_of_position = np.zeros(csr.num_vertices, dtype=np.int64)
        positions = np.arange(csr.num_vertices, dtype=np.int64)
        if self.strategy == "grid":
            tree = self._grid_split(csr, positions, shard_of_position)
        else:
            tree = _kd_split(
                csr, positions, self.num_shards, shard_of_position, _ShardCounter()
            )
        return Partition(network, self.strategy, self.num_shards, shard_of_position, tree)

    # ------------------------------------------------------------- strategies

    def _grid_split(self, csr, positions: np.ndarray, out: np.ndarray) -> "_Split | int":
        """Equal-count x strips, each cut into equal-count y cells (C*R = K)."""
        columns = self._grid_columns(self.num_shards)
        rows = self.num_shards // columns
        strips, x_thresholds = _quantile_chunks(csr.xs, positions, columns)
        subtrees: list[_Split | int] = []
        for strip_index, strip in enumerate(strips):
            cells, y_thresholds = _quantile_chunks(csr.ys, strip, rows)
            leaves: list[_Split | int] = []
            for cell_index, cell in enumerate(cells):
                shard = strip_index * rows + cell_index
                out[cell] = shard
                leaves.append(shard)
            subtrees.append(_fold_splits(1, y_thresholds, leaves))
        return _fold_splits(0, x_thresholds, subtrees)

    @staticmethod
    def _grid_columns(num_shards: int) -> int:
        """Largest divisor of K not above sqrt(K) (1x1, 1x2, 2x2, 2x4, ...)."""
        columns = int(math.isqrt(num_shards))
        while num_shards % columns:
            columns -= 1
        return columns


class _ShardCounter:
    """Monotone shard-id allocator threaded through the KD recursion."""

    def __init__(self) -> None:
        self.value = 0

    def take(self) -> int:
        allocated = self.value
        self.value += 1
        return allocated


def _kd_split(
    csr, positions: np.ndarray, budget: int, out: np.ndarray, counter: _ShardCounter
) -> "_Split | int":
    """Recursive split along the wider axis, counts proportional to budget."""
    if budget == 1:
        shard = counter.take()
        out[positions] = shard
        return shard
    xs = csr.xs[positions]
    ys = csr.ys[positions]
    spread_x = float(xs.max() - xs.min())
    spread_y = float(ys.max() - ys.min())
    axis = 0 if spread_x >= spread_y else 1
    coordinates = xs if axis == 0 else ys
    order = np.argsort(coordinates, kind="stable")
    left_budget = budget // 2
    cut = round(len(positions) * left_budget / budget)
    threshold = float(coordinates[order[cut - 1]])
    return _Split(
        axis=axis,
        threshold=threshold,
        left=_kd_split(csr, positions[order[:cut]], left_budget, out, counter),
        right=_kd_split(csr, positions[order[cut:]], budget - left_budget, out, counter),
    )


def _quantile_chunks(
    coordinates: np.ndarray, positions: np.ndarray, count: int
) -> tuple[list[np.ndarray], list[float]]:
    """Split ``positions`` into ``count`` equal-count chunks by coordinate.

    Returns the chunks plus the ``count - 1`` inclusive upper thresholds that
    separate them (for the split tree). Stable: ties break by CSR position.
    """
    subset = coordinates[positions]
    order = np.argsort(subset, kind="stable")
    ordered = positions[order]
    bounds = [round(len(ordered) * chunk / count) for chunk in range(count + 1)]
    chunks = [ordered[bounds[index]: bounds[index + 1]] for index in range(count)]
    thresholds = [float(subset[order[bounds[index + 1] - 1]]) for index in range(count - 1)]
    return chunks, thresholds


def _fold_splits(
    axis: int, thresholds: list[float], leaves: list["_Split | int"]
) -> "_Split | int":
    """Fold an ordered multi-way quantile split into nested binary ``_Split``s."""
    if len(leaves) == 1:
        return leaves[0]
    node = leaves[-1]
    for index in range(len(thresholds) - 1, -1, -1):
        node = _Split(axis=axis, threshold=thresholds[index], left=leaves[index], right=node)
    return node
