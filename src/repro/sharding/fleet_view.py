"""A restriction of one :class:`~repro.simulation.fleet.FleetState` to a shard.

Inner dispatchers of a :class:`~repro.sharding.dispatcher.ShardedDispatcher`
are ordinary :class:`~repro.dispatch.base.Dispatcher` instances — they are
``setup()`` against a :class:`ShardFleetView` instead of the real fleet. The
view delegates every state accessor to the shared fleet (so materialisation,
clocks and assignment bookkeeping stay global and exact) while restricting
*enumeration* — iteration, length, the grid-sync drain — to the workers
currently bucketed in its shard.

Membership is owned and mutated by the sharded dispatcher: workers are
re-bucketed whenever their materialised position crosses a shard border. The
view's :meth:`drain_moved` always returns an empty list because the sharded
dispatcher maintains the inner grid indexes itself during re-bucketing (a
worker leaving a shard must be *removed* from that shard's grid, which the
plain positional sync of ``Dispatcher.sync_grid`` cannot express).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:
    from repro.network.graph import Vertex
    from repro.network.oracle import DistanceOracle
    from repro.simulation.fleet import FleetState, WorkerState


class ShardFleetView:
    """Shard-restricted, delegation-based view of a shared fleet.

    Args:
        fleet: the real fleet shared by all shards.
        shard_id: which shard this view exposes.
        members: the worker ids currently bucketed in the shard; the set is
            owned (and mutated) by the sharded dispatcher.
        oracle: optional shard-local distance oracle (a locality-appropriate
            backend over the full network, value-exact with the shared one);
            ``None`` exposes the fleet's shared oracle.
    """

    def __init__(
        self,
        fleet: "FleetState",
        shard_id: int,
        members: set[int],
        oracle: "DistanceOracle | None" = None,
    ) -> None:
        self._fleet = fleet
        self.shard_id = shard_id
        self.members = members
        self._oracle = oracle

    # -------------------------------------------------- delegated properties

    @property
    def fleet(self) -> "FleetState":
        """The underlying shared fleet."""
        return self._fleet

    @property
    def lazy(self) -> bool:
        """Advancement regime of the underlying fleet."""
        return self._fleet.lazy

    @property
    def materialise_fast_path(self) -> bool:
        """Whether the underlying fleet skips no-op materialisations."""
        return self._fleet.materialise_fast_path

    @property
    def clock(self) -> float:
        """The shared fleet clock."""
        return self._fleet.clock

    @property
    def oracle(self) -> "DistanceOracle":
        """The shard-local oracle when attached, else the shared one."""
        return self._oracle if self._oracle is not None else self._fleet.oracle

    @property
    def idle_snapshot(self) -> dict[int, tuple["Vertex", int]]:
        """The fleet-wide idle snapshot (candidate ids already shard-local)."""
        return self._fleet.idle_snapshot

    # ----------------------------------------------------- delegated accessors

    def state_of(self, worker_id: int) -> "WorkerState":
        """Materialised state of one worker (delegates to the shared fleet)."""
        return self._fleet.state_of(worker_id)

    def states_of(self, worker_ids: list[int]) -> list["WorkerState"]:
        """Materialised states of many workers (delegates to the shared fleet)."""
        return self._fleet.states_of(worker_ids)

    def peek_state(self, worker_id: int) -> "WorkerState":
        """Non-advancing state accessor (delegates to the shared fleet)."""
        return self._fleet.peek_state(worker_id)

    def idle_partition(self, worker_ids: np.ndarray):
        """Idle/busy split of candidate ids (delegates to the shared fleet)."""
        return self._fleet.idle_partition(worker_ids)

    def is_available(self, worker_id: int) -> bool:
        """Shift status of one worker (delegates to the shared fleet)."""
        return self._fleet.is_available(worker_id)

    def find_assignment(self, request_id: int) -> "WorkerState | None":
        """Worker holding ``request_id`` (delegates to the shared fleet)."""
        return self._fleet.find_assignment(request_id)

    def position_slack_metres(self, max_speed: float) -> float:
        """Fleet-wide staleness bound; admissible for any subset of workers."""
        return self._fleet.position_slack_metres(max_speed)

    # ----------------------------------------------------- shard restriction

    def __iter__(self) -> Iterator["WorkerState"]:
        """Iterate (materialising) over the shard's workers in fleet order."""
        members = self.members
        for worker_id in self._fleet.states:
            if worker_id in members:
                yield self._fleet.state_of(worker_id)

    def __len__(self) -> int:
        return len(self.members)

    def drain_moved(self) -> list[int]:
        """Always empty: the sharded dispatcher syncs the inner grids itself."""
        return []
