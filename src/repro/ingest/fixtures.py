"""Locator for the real-map fixtures bundled with the repository.

The riverton extract under ``tests/fixtures/`` doubles as a registry city
(``repro.workloads.scenarios``), so library code needs a robust way to find
it relative to the installed source tree rather than the caller's CWD.
"""

from __future__ import annotations

from pathlib import Path

from repro.exceptions import IngestError

#: src/repro/ingest/fixtures.py -> repo root is three parents above ``repro``
_REPO_ROOT = Path(__file__).resolve().parents[3]
FIXTURE_DIR = _REPO_ROOT / "tests" / "fixtures"

RIVERTON_FIXTURE = "riverton.geojson"
"""Bundled ~1.5k-edge WGS84 road extract used by tests and the city registry."""


def fixture_path(filename: str) -> Path:
    """Absolute path of a bundled fixture; raises if it is missing."""
    path = FIXTURE_DIR / filename
    if not path.exists():
        raise IngestError(f"bundled fixture not found: {path}")
    return path


__all__ = ["FIXTURE_DIR", "RIVERTON_FIXTURE", "fixture_path"]
