"""Real-map ingestion: GeoJSON / CSV road extracts -> :class:`RoadNetwork`.

The paper evaluates on real city networks (NYC, Chengdu) loaded from
OpenStreetMap extracts. This package provides dependency-free loaders for
the two formats such extracts commonly take — GeoJSON feature collections
and CSV edge lists — plus the shared normalisation pipeline (projection to
a local planar frame, node snapping, speed normalisation, largest-component
extraction) that turns raw geometry into a simulation-ready network.
"""

from __future__ import annotations

from pathlib import Path

from repro.exceptions import IngestError
from repro.ingest.csv_edges import load_csv_network
from repro.ingest.fixtures import FIXTURE_DIR, RIVERTON_FIXTURE, fixture_path
from repro.ingest.geojson import load_geojson_network
from repro.ingest.normalize import (
    ROAD_CLASS_SPEEDS_KMH,
    IngestOptions,
    IngestReport,
    NetworkAssembler,
    parse_maxspeed,
)
from repro.ingest.projection import EARTH_RADIUS_METRES, LocalProjection, looks_geographic
from repro.network.graph import RoadNetwork


def ingest_file(
    path: str | Path,
    name: str | None = None,
    options: IngestOptions | None = None,
    nodes_path: str | Path | None = None,
) -> tuple[RoadNetwork, IngestReport]:
    """Ingest a road-network file, dispatching on its suffix.

    ``.geojson`` / ``.json`` (optionally ``.gz``) go to the GeoJSON loader;
    ``.csv`` (optionally ``.gz``) to the CSV edge-list loader. This is the
    entry point behind ``repro ingest`` and ``file:`` registry cities.
    """
    source = Path(path)
    suffixes = [suffix.lower() for suffix in source.suffixes]
    if suffixes and suffixes[-1] == ".gz":
        suffixes = suffixes[:-1]
    kind = suffixes[-1] if suffixes else ""
    if kind in (".geojson", ".json"):
        return load_geojson_network(source, name=name, options=options)
    if kind == ".csv":
        return load_csv_network(source, nodes_path=nodes_path, name=name, options=options)
    raise IngestError(
        f"cannot ingest {source}: unsupported suffix {kind or source.name!r} "
        "(expected .geojson, .json or .csv, optionally .gz-compressed)"
    )


__all__ = [
    "EARTH_RADIUS_METRES",
    "FIXTURE_DIR",
    "IngestOptions",
    "IngestReport",
    "IngestError",
    "LocalProjection",
    "NetworkAssembler",
    "RIVERTON_FIXTURE",
    "ROAD_CLASS_SPEEDS_KMH",
    "fixture_path",
    "ingest_file",
    "load_csv_network",
    "load_geojson_network",
    "looks_geographic",
    "parse_maxspeed",
]
