"""Shared normalisation pipeline turning raw road geometry into a `RoadNetwork`.

Every ingestion front end (GeoJSON feature collections, CSV edge lists) parses
its format into *polylines with attributes* and hands them to the
:class:`NetworkAssembler`, which owns the steps the formats share:

1. **projection** — WGS84 lon/lat input is projected to a local planar frame
   in metres (:mod:`repro.ingest.projection`); planar input passes through;
2. **node snapping** — endpoints are deduplicated on a ``snap_metres`` grid,
   so features that meet at an intersection with slightly different
   coordinates (a fact of life in real extracts) share one vertex;
3. **unit / speed normalisation** — travel speeds come from an explicit
   ``maxspeed`` tag (km/h or mph) or the road-class default, scaled by the
   paper's "80% of the legal limit" factor, and are converted to m/s;
4. **invariant repair** — segment lengths are clamped up to the straight-line
   distance between their (snapped) endpoints, preserving the admissibility
   of Euclidean lower bounds; self-loops created by snapping are dropped;
5. **largest-component extraction** — unless asked otherwise, only the
   largest connected component survives (the undirected analogue of the
   largest strongly connected component), so distance oracles never see
   unreachable pairs; vertices are then relabelled densely ``0..N-1``.

The whole pipeline is deterministic: identical input files produce identical
networks — and therefore identical :func:`repro.artifacts.network_content_hash`
values, which is what makes the preprocessing artifact store effective.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import IngestError
from repro.ingest.projection import LocalProjection, looks_geographic
from repro.network.graph import (
    RoadNetwork,
    connected_components,
    induced_subnetwork,
)
from repro.utils.geometry import Point

#: legal speed limits (km/h) per OSM ``highway`` class; the effective travel
#: speed is ``limit * speed_factor`` (the paper uses 80% of the legal limit).
ROAD_CLASS_SPEEDS_KMH: dict[str, float] = {
    "motorway": 110.0,
    "motorway_link": 70.0,
    "trunk": 90.0,
    "trunk_link": 60.0,
    "primary": 60.0,
    "primary_link": 50.0,
    "secondary": 50.0,
    "secondary_link": 45.0,
    "tertiary": 45.0,
    "tertiary_link": 40.0,
    "unclassified": 40.0,
    "residential": 30.0,
    "living_street": 15.0,
    "service": 20.0,
    "pedestrian": 10.0,
    "track": 20.0,
}

MPH_TO_KMH = 1.609344


def parse_maxspeed(value: object) -> float | None:
    """Parse an OSM-style ``maxspeed`` tag into km/h (``None`` = unusable).

    Accepts numbers, ``"50"``, ``"50 km/h"``, ``"30 mph"``; signposted
    non-numeric values (``"none"``, ``"walk"``, ...) yield ``None`` so the
    road-class default applies.
    """
    if value is None:
        return None
    if isinstance(value, (int, float)):
        return float(value) if value > 0 else None
    text = str(value).strip().lower()
    if not text or text.startswith("-"):
        return None
    unit_mph = "mph" in text
    number = ""
    for char in text:
        if char.isdigit() or char == ".":
            number += char
        elif number:
            break
    if not number:
        return None
    try:
        kmh = float(number)
    except ValueError:  # pragma: no cover - the scan above prevents this
        return None
    if unit_mph:
        kmh *= MPH_TO_KMH
    return kmh if kmh > 0 else None


@dataclass(frozen=True)
class IngestOptions:
    """Knobs of the normalisation pipeline.

    Attributes:
        snap_metres: node-deduplication grid pitch; endpoints quantised to
            the same cell become one vertex. Real extracts need ~0.5-2 m.
        speed_factor: effective-speed fraction of the legal limit (the
            paper's 80% rule).
        default_road_class: class assumed when a feature carries none.
        default_speed_kmh: legal limit assumed for road classes missing from
            :data:`ROAD_CLASS_SPEEDS_KMH`.
        projection: ``"auto"`` (detect lon/lat from the value range),
            ``"geographic"`` (always project) or ``"planar"`` (never).
        keep_all_components: skip largest-component extraction (debugging).
    """

    snap_metres: float = 1.0
    speed_factor: float = 0.8
    default_road_class: str = "residential"
    default_speed_kmh: float = 40.0
    projection: str = "auto"
    keep_all_components: bool = False

    def __post_init__(self) -> None:
        if self.snap_metres <= 0:
            raise IngestError(f"snap_metres must be positive, got {self.snap_metres}")
        if not 0 < self.speed_factor <= 1.0:
            raise IngestError(f"speed_factor must be in (0, 1], got {self.speed_factor}")
        if self.projection not in ("auto", "geographic", "planar"):
            raise IngestError(
                f"unknown projection mode {self.projection!r}; "
                "use 'auto', 'geographic' or 'planar'"
            )

    def speed_mps(self, road_class: str, maxspeed_kmh: float | None) -> float:
        """Effective travel speed in m/s for a segment."""
        limit = maxspeed_kmh
        if limit is None:
            limit = ROAD_CLASS_SPEEDS_KMH.get(road_class, self.default_speed_kmh)
        return limit * self.speed_factor / 3.6


@dataclass
class IngestReport:
    """What the pipeline did — surfaced by the ``repro ingest`` CLI."""

    features: int = 0
    segments: int = 0
    raw_points: int = 0
    snapped_nodes: int = 0
    self_loops_dropped: int = 0
    components: int = 0
    vertices: int = 0
    edges: int = 0
    dropped_vertices: int = 0
    projection: str = "planar"
    road_classes: dict[str, int] = field(default_factory=dict)

    def lines(self) -> list[str]:
        """Human-readable summary lines."""
        return [
            f"features ingested:   {self.features} ({self.segments} segments)",
            f"projection:          {self.projection}",
            f"node snapping:       {self.raw_points} points -> {self.snapped_nodes} nodes",
            f"self-loops dropped:  {self.self_loops_dropped}",
            f"components:          {self.components} "
            f"(largest kept, {self.dropped_vertices} vertices dropped)",
            f"network:             {self.vertices} vertices, {self.edges} edges",
            "road classes:        "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.road_classes.items())),
        ]


@dataclass
class _Polyline:
    points: list[tuple[float, float]]
    road_class: str
    maxspeed_kmh: float | None
    length_metres: float | None
    speed_mps: float | None


class NetworkAssembler:
    """Accumulates polylines, then builds one normalised :class:`RoadNetwork`."""

    def __init__(self, name: str, options: IngestOptions | None = None) -> None:
        self.name = name
        self.options = options if options is not None else IngestOptions()
        self._polylines: list[_Polyline] = []

    def add_polyline(
        self,
        points: list[tuple[float, float]],
        road_class: str | None = None,
        maxspeed: object = None,
        length_metres: float | None = None,
        speed_mps: float | None = None,
    ) -> None:
        """Queue one road geometry (>= 2 points).

        Args:
            points: ``(x, y)`` or ``(lon, lat)`` coordinates along the road.
            road_class: OSM ``highway``-style class; defaults per options.
            maxspeed: raw ``maxspeed`` tag (parsed leniently).
            length_metres: measured length of the *whole* polyline (e.g. a
                pre-computed field of the export); distributed over the
                segments proportionally to their geometric length.
            speed_mps: explicit travel speed — wins over every speed rule.
        """
        if len(points) < 2:
            raise IngestError(
                f"polyline needs at least 2 points, got {len(points)} ({self.name})"
            )
        if length_metres is not None and length_metres < 0:
            raise IngestError(f"negative polyline length {length_metres} ({self.name})")
        if speed_mps is not None and speed_mps <= 0:
            raise IngestError(f"non-positive speed {speed_mps} m/s ({self.name})")
        self._polylines.append(
            _Polyline(
                points=[(float(x), float(y)) for x, y in points],
                road_class=road_class or self.options.default_road_class,
                maxspeed_kmh=parse_maxspeed(maxspeed),
                length_metres=length_metres,
                speed_mps=speed_mps,
            )
        )

    # ------------------------------------------------------------------ build

    def build(self) -> tuple[RoadNetwork, IngestReport]:
        """Run the pipeline; returns the network and a report of what happened."""
        if not self._polylines:
            raise IngestError(f"no road geometry to ingest ({self.name})")
        options = self.options
        report = IngestReport(features=len(self._polylines))

        projected = self._project(report)

        # snap: bucket nodes on a snap-sized grid, but match against the
        # 3x3 cell neighbourhood so two endpoints within snap_metres unify
        # even when they straddle a cell boundary. The first point seen
        # fixes the node coordinate (deterministic — input order is fixed).
        snap = options.snap_metres
        node_of_cell: dict[tuple[int, int], list[int]] = {}
        node_coordinates: list[tuple[float, float]] = []

        def node_for(x: float, y: float) -> int:
            cx = round(x / snap)
            cy = round(y / snap)
            best = -1
            best_distance = snap
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for node in node_of_cell.get((cx + dx, cy + dy), ()):
                        nx, ny = node_coordinates[node]
                        distance = math.hypot(x - nx, y - ny)
                        # strict < keeps the match unique and order-stable
                        if distance < best_distance:
                            best = node
                            best_distance = distance
            if best >= 0:
                return best
            node = len(node_coordinates)
            node_of_cell.setdefault((cx, cy), []).append(node)
            node_coordinates.append((x, y))
            return node

        network = RoadNetwork(name=self.name)
        added_vertices: set[int] = set()

        for polyline, points in zip(self._polylines, projected):
            report.raw_points += len(points)
            segment_lengths = [
                math.dist(points[i], points[i + 1]) for i in range(len(points) - 1)
            ]
            total = sum(segment_lengths)
            speed = (
                polyline.speed_mps
                if polyline.speed_mps is not None
                else options.speed_mps(polyline.road_class, polyline.maxspeed_kmh)
            )
            for i, geometric in enumerate(segment_lengths):
                report.segments += 1
                u = node_for(*points[i])
                v = node_for(*points[i + 1])
                if u == v:
                    report.self_loops_dropped += 1
                    continue
                if polyline.length_metres is not None and total > 0:
                    length = polyline.length_metres * geometric / total
                else:
                    length = geometric
                for node in (u, v):
                    if node not in added_vertices:
                        network.add_vertex(node, Point(*node_coordinates[node]))
                        added_vertices.add(node)
                # snapping may have moved the endpoints; never let the edge
                # undercut the straight line (admissible lower bounds)
                straight = network.euclidean(u, v)
                network.add_edge(
                    u,
                    v,
                    length=max(length, straight),
                    speed=speed,
                    road_class=polyline.road_class,
                )
                report.road_classes[polyline.road_class] = (
                    report.road_classes.get(polyline.road_class, 0) + 1
                )
        report.snapped_nodes = len(node_coordinates)

        network = self._restrict_and_relabel(network, report)
        report.vertices = network.num_vertices
        report.edges = network.num_edges
        network.validate()
        return network, report

    # -------------------------------------------------------------- internals

    def _project(self, report: IngestReport) -> list[list[tuple[float, float]]]:
        """Project every polyline into the local planar frame (or pass through)."""
        options = self.options
        xs = [x for polyline in self._polylines for x, _ in polyline.points]
        ys = [y for polyline in self._polylines for _, y in polyline.points]
        if options.projection == "geographic":
            geographic = True
        elif options.projection == "planar":
            geographic = False
        else:
            geographic = looks_geographic(xs, ys)
        if not geographic:
            report.projection = "planar (passed through)"
            return [list(polyline.points) for polyline in self._polylines]
        projection = LocalProjection.about_centroid(xs, ys)
        report.projection = (
            f"equirectangular about ({projection.lon0_degrees:.5f}, "
            f"{projection.lat0_degrees:.5f})"
        )
        return [
            [projection.project(lon, lat) for lon, lat in polyline.points]
            for polyline in self._polylines
        ]

    def _restrict_and_relabel(
        self, network: RoadNetwork, report: IngestReport
    ) -> RoadNetwork:
        """Largest-component extraction + dense ``0..N-1`` relabelling."""
        components = connected_components(network)
        report.components = components.count
        if components.count > 1 and not self.options.keep_all_components:
            keep = components.largest_component()
            report.dropped_vertices = network.num_vertices - len(keep)
            network = induced_subnetwork(network, keep)
        # dense ids keep the CSR's O(1) vertex->position lookup applicable
        # regardless of how many vertices the component extraction dropped
        relabel = {old: new for new, old in enumerate(sorted(network.vertices()))}
        result = RoadNetwork(name=network.name)
        for old, new in relabel.items():
            result.add_vertex(new, network.coordinates(old))
        for edge in sorted(network.edges(), key=lambda e: (e.u, e.v)):
            result.add_edge(
                relabel[edge.u],
                relabel[edge.v],
                length=edge.length,
                speed=edge.speed,
                road_class=edge.road_class,
            )
        return result


__all__ = [
    "ROAD_CLASS_SPEEDS_KMH",
    "IngestOptions",
    "IngestReport",
    "NetworkAssembler",
    "parse_maxspeed",
]
