"""CSV edge-list ingestion.

Many published road-network datasets (and most GIS exports) are a pair of
flat tables: a node table with coordinates and an edge table referencing
node ids — or a single denormalised edge table with inline endpoint
coordinates. This module reads both shapes with the stdlib ``csv`` module
and feeds them through the shared normalisation pipeline.

Recognised columns (case-insensitive):

* edge file: ``u``/``source``/``from`` and ``v``/``target``/``to`` node ids,
  or inline ``ux, uy, vx, vy`` (alias ``x1, y1, x2, y2``) coordinates;
  optional ``length`` (metres), ``speed`` (m/s), ``maxspeed`` (km/h or
  ``"30 mph"``), ``road_class``/``highway``.
* node file: ``id``/``node``/``node_id``, ``x``/``lon``/``lng``/``longitude``,
  ``y``/``lat``/``latitude``.
"""

from __future__ import annotations

import csv
import gzip
from pathlib import Path

from repro.exceptions import IngestError
from repro.ingest.normalize import IngestOptions, IngestReport, NetworkAssembler
from repro.network.graph import RoadNetwork

_U_KEYS = ("u", "source", "from", "from_id", "start")
_V_KEYS = ("v", "target", "to", "to_id", "end")
_ID_KEYS = ("id", "node", "node_id", "osmid")
_X_KEYS = ("x", "lon", "lng", "longitude")
_Y_KEYS = ("y", "lat", "latitude")
_CLASS_KEYS = ("road_class", "highway", "class", "fclass")
_INLINE_KEYS = (("ux", "uy", "vx", "vy"), ("x1", "y1", "x2", "y2"))


def _open_rows(path: Path) -> list[dict[str, str]]:
    opener = gzip.open if path.suffix.lower() == ".gz" else open
    try:
        with opener(path, "rt", encoding="utf-8", newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None:
                raise IngestError(f"{path} has no CSV header row")
            rows = [
                {
                    (key or "").strip().lower(): (value or "").strip()
                    for key, value in row.items()
                }
                for row in reader
            ]
    except OSError as error:
        raise IngestError(f"cannot read CSV {path}: {error}") from error
    if not rows:
        raise IngestError(f"{path} contains no data rows")
    return rows


def _pick(row: dict[str, str], keys: tuple[str, ...]) -> str | None:
    for key in keys:
        value = row.get(key)
        if value:
            return value
    return None


def _require_float(row: dict[str, str], keys: tuple[str, ...], path: Path, line: int) -> float:
    value = _pick(row, keys)
    if value is None:
        raise IngestError(f"{path}:{line}: missing one of columns {keys}")
    try:
        return float(value)
    except ValueError as error:
        raise IngestError(f"{path}:{line}: not a number: {value!r}") from error


def _optional_float(row: dict[str, str], key: str, path: Path, line: int) -> float | None:
    value = row.get(key)
    if not value:
        return None
    try:
        return float(value)
    except ValueError as error:
        raise IngestError(f"{path}:{line}: not a number: {value!r}") from error


def load_csv_network(
    edges_path: str | Path,
    nodes_path: str | Path | None = None,
    name: str | None = None,
    options: IngestOptions | None = None,
) -> tuple[RoadNetwork, IngestReport]:
    """Build a road network from CSV edge (and optionally node) tables.

    Args:
        edges_path: edge table; either references node ids (requires
            ``nodes_path``) or carries inline endpoint coordinates.
        nodes_path: node table with ``id, x, y`` columns.
        name: network name; defaults to the edge-file stem.
        options: normalisation knobs (snapping, speeds, projection).

    Returns:
        ``(network, report)`` as for the GeoJSON loader.
    """
    edge_file = Path(edges_path)
    if not edge_file.exists():
        raise IngestError(f"edge CSV not found: {edge_file}")
    edge_rows = _open_rows(edge_file)

    coordinates: dict[str, tuple[float, float]] = {}
    if nodes_path is not None:
        node_file = Path(nodes_path)
        if not node_file.exists():
            raise IngestError(f"node CSV not found: {node_file}")
        for line, row in enumerate(_open_rows(node_file), start=2):
            node_id = _pick(row, _ID_KEYS)
            if node_id is None:
                raise IngestError(f"{node_file}:{line}: missing node id column {_ID_KEYS}")
            coordinates[node_id] = (
                _require_float(row, _X_KEYS, node_file, line),
                _require_float(row, _Y_KEYS, node_file, line),
            )

    header = edge_rows[0]
    inline = next(
        (quad for quad in _INLINE_KEYS if all(key in header for key in quad)), None
    )
    if inline is None and not coordinates:
        raise IngestError(
            f"{edge_file} references node ids but no node table was given "
            "(pass nodes_path, or use inline ux/uy/vx/vy columns)"
        )

    if name is None:
        stem = edge_file.name
        for suffix in (".gz", ".csv"):
            if stem.lower().endswith(suffix):
                stem = stem[: -len(suffix)]
        name = stem or "csv-network"

    assembler = NetworkAssembler(name, options)
    for line, row in enumerate(edge_rows, start=2):
        if inline is not None:
            ux = _require_float(row, (inline[0],), edge_file, line)
            uy = _require_float(row, (inline[1],), edge_file, line)
            vx = _require_float(row, (inline[2],), edge_file, line)
            vy = _require_float(row, (inline[3],), edge_file, line)
            endpoints = [(ux, uy), (vx, vy)]
        else:
            u = _pick(row, _U_KEYS)
            v = _pick(row, _V_KEYS)
            if u is None or v is None:
                raise IngestError(
                    f"{edge_file}:{line}: missing endpoint columns {_U_KEYS} / {_V_KEYS}"
                )
            try:
                endpoints = [coordinates[u], coordinates[v]]
            except KeyError as error:
                raise IngestError(
                    f"{edge_file}:{line}: unknown node id {error.args[0]!r}"
                ) from error
        assembler.add_polyline(
            endpoints,
            road_class=_pick(row, _CLASS_KEYS),
            maxspeed=row.get("maxspeed") or None,
            length_metres=_optional_float(row, "length", edge_file, line),
            speed_mps=_optional_float(row, "speed", edge_file, line),
        )
    return assembler.build()


__all__ = ["load_csv_network"]
