"""GeoJSON ingestion — the format real OSM road extracts actually arrive in.

Reads a ``FeatureCollection`` of ``LineString`` / ``MultiLineString``
features (the output of ``osmium export``, ``ogr2ogr`` or overpass-turbo),
maps the usual OSM-style properties (``highway``, ``maxspeed``, measured
``length``) onto the shared :class:`repro.ingest.normalize.NetworkAssembler`
pipeline, and returns a normalised :class:`repro.network.graph.RoadNetwork`.

No geopandas/shapely: the subset of GeoJSON a road extract uses is plain
JSON, and staying dependency-free is a repo constraint. ``*.gz`` files are
decompressed transparently.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Any

from repro.exceptions import IngestError
from repro.ingest.normalize import IngestOptions, IngestReport, NetworkAssembler
from repro.network.graph import RoadNetwork

#: feature properties accepted as the road class, in priority order
ROAD_CLASS_KEYS = ("highway", "road_class", "class", "fclass")
#: feature properties accepted as a measured polyline length in metres
LENGTH_KEYS = ("length", "length_m", "length_metres")


def _coerce_positions(geometry: dict[str, Any]) -> list[list[tuple[float, float]]]:
    """Extract the polyline(s) of a GeoJSON geometry as ``(x, y)`` lists."""
    kind = geometry.get("type")
    coordinates = geometry.get("coordinates")
    if kind == "LineString":
        parts = [coordinates]
    elif kind == "MultiLineString":
        parts = coordinates
    else:
        return []  # points, polygons etc. are not roads; skipped silently
    result: list[list[tuple[float, float]]] = []
    for part in parts or []:
        try:
            # GeoJSON positions may carry altitude as a third element
            result.append([(float(p[0]), float(p[1])) for p in part])
        except (TypeError, ValueError, IndexError) as error:
            raise IngestError(f"malformed GeoJSON coordinates: {error}") from error
    return result


def load_geojson_network(
    path: str | Path,
    name: str | None = None,
    options: IngestOptions | None = None,
) -> tuple[RoadNetwork, IngestReport]:
    """Build a road network from a GeoJSON ``FeatureCollection`` file.

    Args:
        path: ``.geojson`` / ``.json`` file, optionally ``.gz``-compressed.
        name: network name; defaults to the file stem.
        options: normalisation knobs (snapping, speeds, projection).

    Returns:
        ``(network, report)`` — the largest-component, densely-relabelled
        network and the ingestion statistics.
    """
    source = Path(path)
    if not source.exists():
        raise IngestError(f"GeoJSON file not found: {source}")
    opener = gzip.open if source.suffix.lower() == ".gz" else open
    try:
        with opener(source, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise IngestError(f"cannot read GeoJSON {source}: {error}") from error

    if not isinstance(payload, dict) or payload.get("type") != "FeatureCollection":
        raise IngestError(
            f"{source} is not a GeoJSON FeatureCollection "
            f"(type={payload.get('type') if isinstance(payload, dict) else type(payload).__name__!r})"
        )

    if name is None:
        stem = source.name
        for suffix in (".gz", ".geojson", ".json"):
            if stem.lower().endswith(suffix):
                stem = stem[: -len(suffix)]
        name = stem or "geojson-network"

    assembler = NetworkAssembler(name, options)
    for feature in payload.get("features", []):
        if not isinstance(feature, dict):
            raise IngestError(f"malformed feature in {source}: {feature!r}")
        geometry = feature.get("geometry") or {}
        properties = feature.get("properties") or {}
        parts = _coerce_positions(geometry)
        if not parts:
            continue
        road_class = next(
            (properties[key] for key in ROAD_CLASS_KEYS if properties.get(key)), None
        )
        length = next(
            (properties[key] for key in LENGTH_KEYS if properties.get(key) is not None),
            None,
        )
        for part in parts:
            if len(part) < 2:
                continue  # degenerate single-point part
            assembler.add_polyline(
                part,
                road_class=str(road_class) if road_class is not None else None,
                maxspeed=properties.get("maxspeed"),
                # a measured length covers the whole feature; per-part lengths
                # are recovered proportionally inside the assembler, so only
                # pass it through for single-part geometries
                length_metres=float(length) if length is not None and len(parts) == 1 else None,
            )
    return assembler.build()


__all__ = ["LENGTH_KEYS", "ROAD_CLASS_KEYS", "load_geojson_network"]
