"""Coordinate projection for real-map ingestion.

Real road extracts (GeoJSON from OpenStreetMap, CSV edge lists exported from
GIS tools) usually carry WGS84 longitude/latitude degrees, while everything
downstream — Euclidean lower bounds, the grid index, spatial sharding —
expects a **local planar frame in metres**. A city-scale extract spans a few
dozen kilometres, so an equirectangular projection about the extract's
centroid is accurate to well under 0.1% there; crucially it is *strictly
contracting relative to geodesic lengths* (a chord is never longer than the
arc), so edge lengths measured along the original geometry keep the
``length >= straight-line`` invariant the admissible lower bounds require.

The reproduction stays dependency-free (no pyproj/geopandas): sources that
are already planar (``EPSG:2263``-style exports, the synthetic generators)
are passed through untouched, and geographic input is detected from the
value range when not declared.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_METRES = 6_371_008.8
"""Mean Earth radius (IUGG); the scale factor of the local projection."""


def looks_geographic(xs: list[float], ys: list[float]) -> bool:
    """Heuristic: do these coordinates look like WGS84 lon/lat degrees?

    True when every x fits a longitude and every y a latitude. A planar
    network smaller than ~180 x 90 *metres* would be misdetected, but no
    road network fits a postage stamp.
    """
    if not xs or not ys:
        return False
    return (
        max(abs(x) for x in xs) <= 180.0
        and max(abs(y) for y in ys) <= 90.0
    )


@dataclass(frozen=True)
class LocalProjection:
    """An equirectangular projection about a reference point.

    ``x = R * (lon - lon0) * cos(lat0)``, ``y = R * (lat - lat0)`` with all
    angles in radians — the standard local tangent-plane approximation. The
    reference point is recorded so manifests can document the frame.
    """

    lon0_degrees: float
    lat0_degrees: float

    def project(self, lon: float, lat: float) -> tuple[float, float]:
        """Project one lon/lat pair (degrees) to local planar metres."""
        scale = math.cos(math.radians(self.lat0_degrees)) * EARTH_RADIUS_METRES
        x = math.radians(lon - self.lon0_degrees) * scale
        y = math.radians(lat - self.lat0_degrees) * EARTH_RADIUS_METRES
        return x, y

    @classmethod
    def about_centroid(cls, lons: list[float], lats: list[float]) -> "LocalProjection":
        """Projection centred on the coordinate centroid (midpoint of the bbox).

        The bbox midpoint (not the mean) keeps the frame independent of how
        densely each street is sampled, so re-ingesting the same extract with
        different geometry simplification yields the same frame.
        """
        if not lons or not lats:
            raise ValueError("cannot centre a projection on zero coordinates")
        lon0 = (min(lons) + max(lons)) / 2.0
        lat0 = (min(lats) + max(lats)) / 2.0
        return cls(lon0_degrees=lon0, lat0_degrees=lat0)


__all__ = ["EARTH_RADIUS_METRES", "LocalProjection", "looks_geographic"]
