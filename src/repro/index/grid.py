"""Uniform grid index over road-network vertices and workers.

Every algorithm in the paper's evaluation builds a grid index over the city
(Table 5 sweeps the grid size ``g`` from 1 km to 5 km). The index maps each
vertex to a square cell of side ``g`` and maintains, per cell, the set of
workers currently located there. Candidate filtering retrieves the workers in
all cells intersecting a query disk (e.g. the region reachable before a pickup
deadline).

The index also reports an estimate of its memory footprint, which the paper
compares across algorithms in Figure 5's discussion.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable, Iterable

import numpy as np

from repro.network.graph import RoadNetwork, Vertex

Cell = tuple[int, int]
"""Grid cell identifier (column, row)."""


@dataclass(frozen=True)
class GridGeometry:
    """Geometry of a uniform grid covering a road network."""

    min_x: float
    min_y: float
    cell_metres: float
    columns: int
    rows: int

    def cell_of_point(self, x: float, y: float) -> Cell:
        """Cell containing the point ``(x, y)`` (clamped to the grid extent)."""
        column = int((x - self.min_x) // self.cell_metres)
        row = int((y - self.min_y) // self.cell_metres)
        column = min(max(column, 0), self.columns - 1)
        row = min(max(row, 0), self.rows - 1)
        return (column, row)

    def cell_centre(self, cell: Cell) -> tuple[float, float]:
        """Centre coordinates of ``cell`` in metres."""
        column, row = cell
        return (
            self.min_x + (column + 0.5) * self.cell_metres,
            self.min_y + (row + 0.5) * self.cell_metres,
        )

    def cells_within_radius(self, x: float, y: float, radius_metres: float) -> list[Cell]:
        """All cells whose bounding box intersects the disk of the given radius."""
        if radius_metres < 0:
            return []
        min_column = int((x - radius_metres - self.min_x) // self.cell_metres)
        max_column = int((x + radius_metres - self.min_x) // self.cell_metres)
        min_row = int((y - radius_metres - self.min_y) // self.cell_metres)
        max_row = int((y + radius_metres - self.min_y) // self.cell_metres)
        cells: list[Cell] = []
        for column in range(max(min_column, 0), min(max_column, self.columns - 1) + 1):
            for row in range(max(min_row, 0), min(max_row, self.rows - 1) + 1):
                cells.append((column, row))
        return cells

    @property
    def num_cells(self) -> int:
        """Total number of cells."""
        return self.columns * self.rows


class GridIndex:
    """Grid index of movable objects (workers) positioned at network vertices.

    Args:
        network: road network providing vertex coordinates.
        cell_metres: grid cell side length in metres (``g`` in the paper,
            expressed there in kilometres).
        vertex_cells: optional precomputed ``vertex -> cell`` mapping to share
            between indexes of the *same network and cell size* (the sharded
            dispatcher builds K grids over one geometry); when given, the
            per-vertex cell pass is skipped and the dict is used as-is.
    """

    def __init__(
        self,
        network: RoadNetwork,
        cell_metres: float,
        vertex_cells: dict[Vertex, Cell] | None = None,
    ) -> None:
        if cell_metres <= 0:
            raise ValueError(f"cell_metres must be positive, got {cell_metres}")
        self.network = network
        # one vectorized pass over the CSR coordinate arrays replaces the
        # per-vertex Point arithmetic of the seed implementation
        csr = network.csr
        if csr.num_vertices == 0:
            raise ValueError("bounding_box() requires at least one point")
        xs, ys = csr.xs, csr.ys
        min_x = float(xs.min())
        min_y = float(ys.min())
        max_x = float(xs.max())
        max_y = float(ys.max())
        columns = max(1, int(math.ceil((max_x - min_x) / cell_metres)) or 1)
        rows = max(1, int(math.ceil((max_y - min_y) / cell_metres)) or 1)
        self.geometry = GridGeometry(
            min_x=min_x, min_y=min_y, cell_metres=cell_metres, columns=columns, rows=rows
        )
        # cache vertex -> cell to avoid repeated float arithmetic; the
        # floor-divide/clip pipeline mirrors GridGeometry.cell_of_point
        if vertex_cells is not None:
            self._vertex_cell = vertex_cells
        else:
            cell_columns = np.clip((xs - min_x) // cell_metres, 0, columns - 1).astype(np.int64)
            cell_rows = np.clip((ys - min_y) // cell_metres, 0, rows - 1).astype(np.int64)
            self._vertex_cell: dict[Vertex, Cell] = {
                vertex: (column, row)
                for vertex, column, row in zip(
                    csr.vertex_ids_list, cell_columns.tolist(), cell_rows.tolist()
                )
            }
        self._members: dict[Cell, set[Hashable]] = defaultdict(set)
        self._locations: dict[Hashable, Cell] = {}

    # -------------------------------------------------------------- mutation

    def insert(self, member: Hashable, vertex: Vertex) -> None:
        """Insert ``member`` (e.g. a worker id) at ``vertex`` (moves it if present)."""
        cell = self.cell_of_vertex(vertex)
        previous = self._locations.get(member)
        if previous == cell:
            return
        if previous is not None:
            self._members[previous].discard(member)
        self._members[cell].add(member)
        self._locations[member] = cell

    def remove(self, member: Hashable) -> None:
        """Remove ``member`` from the index (no-op if absent)."""
        cell = self._locations.pop(member, None)
        if cell is not None:
            self._members[cell].discard(member)

    def update(self, member: Hashable, vertex: Vertex) -> None:
        """Alias of :meth:`insert`; provided for readability at call sites."""
        self.insert(member, vertex)

    # ----------------------------------------------------------------- query

    @property
    def vertex_cells(self) -> dict[Vertex, Cell]:
        """The ``vertex -> cell`` mapping (shareable across same-geometry indexes)."""
        return self._vertex_cell

    def cell_of_vertex(self, vertex: Vertex) -> Cell:
        """Cell containing ``vertex``."""
        cell = self._vertex_cell.get(vertex)
        if cell is None:
            point = self.network.coordinates(vertex)
            cell = self.geometry.cell_of_point(point.x, point.y)
            self._vertex_cell[vertex] = cell
        return cell

    def members_in_cell(self, cell: Cell) -> set[Hashable]:
        """Members currently registered in ``cell``."""
        return set(self._members.get(cell, ()))

    def members_near_vertex(self, vertex: Vertex, radius_metres: float) -> list[Hashable]:
        """Members in every cell intersecting the disk around ``vertex``.

        The disk is in Euclidean metres, so with a radius derived from a time
        budget times the maximum speed the result is a superset of the members
        actually reachable within the budget — no candidate is lost.
        """
        point = self.network.coordinates(vertex)
        geometry = self.geometry
        # a disk covering the whole grid extent (deadline radii often do)
        # trivially selects every member — skip the cell walk
        if (
            point.x - radius_metres <= geometry.min_x
            and point.y - radius_metres <= geometry.min_y
            and point.x + radius_metres >= geometry.min_x + geometry.columns * geometry.cell_metres
            and point.y + radius_metres >= geometry.min_y + geometry.rows * geometry.cell_metres
        ):
            return list(self._locations)
        members: list[Hashable] = []
        for cell in geometry.cells_within_radius(point.x, point.y, radius_metres):
            members.extend(self._members.get(cell, ()))
        return members

    def all_members(self) -> list[Hashable]:
        """Every member currently in the index."""
        return list(self._locations)

    def __len__(self) -> int:
        return len(self._locations)

    # ------------------------------------------------------------ statistics

    def memory_estimate_bytes(self) -> int:
        """Rough memory footprint of the index payload in bytes.

        Counts occupied cells and memberships with fixed per-entry costs, which
        is the comparison the paper makes (its other algorithms store "only the
        IDs of workers in the grid").
        """
        occupied_cells = sum(1 for members in self._members.values() if members)
        memberships = sum(len(members) for members in self._members.values())
        bytes_per_cell = 64
        bytes_per_membership = 8
        bytes_per_location = 16
        return (
            occupied_cells * bytes_per_cell
            + memberships * bytes_per_membership
            + len(self._locations) * bytes_per_location
        )

    def occupancy_histogram(self) -> dict[int, int]:
        """Histogram ``members_per_cell -> number_of_cells`` over occupied cells."""
        histogram: dict[int, int] = defaultdict(int)
        for members in self._members.values():
            if members:
                histogram[len(members)] += 1
        return dict(histogram)


def bulk_load(index: GridIndex, positions: Iterable[tuple[Hashable, Vertex]]) -> None:
    """Insert many ``(member, vertex)`` pairs into ``index``."""
    for member, vertex in positions:
        index.insert(member, vertex)
