"""T-share style grid index with per-cell sorted neighbour lists.

The ``tshare`` baseline (Ma et al., ICDE 2013) augments the uniform grid with,
for every cell, a list of all other cells sorted by the travel time between
cell centres. A new request searches outward from its origin cell in that
pre-sorted order and stops as soon as cells can no longer be reached before the
pickup deadline — a *single-side* search that is fast but may discard workers
that could still have served the request (the paper highlights exactly this
failure mode: tshare has the lowest served rate).

Storing the full sorted lists is also what makes tshare's grid index an order
of magnitude more memory hungry than the plain :class:`~repro.index.grid.GridIndex`
(Figure 5 discussion), which :meth:`TShareGridIndex.memory_estimate_bytes`
reflects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.index.grid import Cell, GridIndex
from repro.network.graph import RoadNetwork, Vertex


@dataclass(frozen=True)
class CellDistance:
    """A destination cell and the estimated travel time to reach it."""

    cell: Cell
    travel_seconds: float


class TShareGridIndex(GridIndex):
    """Grid index with pre-sorted cell-to-cell travel-time lists.

    Args:
        network: road network.
        cell_metres: grid cell side length in metres.
        average_speed: speed (m/s) used to convert centre-to-centre Euclidean
            distances into travel-time estimates for the sorted lists. T-share
            pre-computes these estimates offline; a constant average speed is
            the standard approximation.
    """

    def __init__(
        self, network: RoadNetwork, cell_metres: float, average_speed: float = 10.0
    ) -> None:
        super().__init__(network, cell_metres)
        if average_speed <= 0:
            raise ValueError(f"average_speed must be positive, got {average_speed}")
        self.average_speed = average_speed
        self._sorted_cells: dict[Cell, list[CellDistance]] = {}
        self._build_sorted_lists()

    def _build_sorted_lists(self) -> None:
        geometry = self.geometry
        cells = [
            (column, row)
            for column in range(geometry.columns)
            for row in range(geometry.rows)
        ]
        centres = {cell: geometry.cell_centre(cell) for cell in cells}
        for origin in cells:
            ox, oy = centres[origin]
            entries = []
            for destination in cells:
                dx, dy = centres[destination]
                distance_metres = math.hypot(ox - dx, oy - dy)
                entries.append(
                    CellDistance(cell=destination, travel_seconds=distance_metres / self.average_speed)
                )
            entries.sort(key=lambda entry: entry.travel_seconds)
            self._sorted_cells[origin] = entries

    # ----------------------------------------------------------------- query

    def cells_reachable_within(self, origin_vertex: Vertex, budget_seconds: float) -> list[Cell]:
        """Cells whose centre is estimated reachable within ``budget_seconds``.

        This is T-share's single-side temporal search: it walks the origin
        cell's pre-sorted list and stops at the first cell beyond the budget.
        """
        origin_cell = self.cell_of_vertex(origin_vertex)
        reachable: list[Cell] = []
        for entry in self._sorted_cells.get(origin_cell, ()):
            if entry.travel_seconds > budget_seconds:
                break
            reachable.append(entry.cell)
        return reachable

    def candidate_workers(self, origin_vertex: Vertex, budget_seconds: float) -> list:
        """Workers located in the cells reachable within ``budget_seconds``."""
        candidates: list = []
        for cell in self.cells_reachable_within(origin_vertex, budget_seconds):
            candidates.extend(self._members.get(cell, ()))
        return candidates

    # ------------------------------------------------------------ statistics

    def memory_estimate_bytes(self) -> int:
        """Memory footprint including the per-cell sorted lists."""
        base = super().memory_estimate_bytes()
        bytes_per_list_entry = 24  # cell id pair + float
        sorted_entries = sum(len(entries) for entries in self._sorted_cells.values())
        return base + sorted_entries * bytes_per_list_entry
