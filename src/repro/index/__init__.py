"""Spatial indexes: uniform worker grid and the T-share sorted-cell grid."""

from repro.index.grid import Cell, GridGeometry, GridIndex, bulk_load
from repro.index.tshare_grid import CellDistance, TShareGridIndex

__all__ = [
    "Cell",
    "GridGeometry",
    "GridIndex",
    "bulk_load",
    "CellDistance",
    "TShareGridIndex",
]
