"""A self-contained URPSM problem instance.

Bundles the road network (with its distance oracle), the worker fleet, the
request stream and the objective parameterisation. The dynamic simulator
consumes instances; the workload generators produce them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.objective import ObjectiveConfig, paper_default_objective
from repro.core.types import Request, Worker
from repro.exceptions import ConfigurationError
from repro.network.graph import RoadNetwork
from repro.network.oracle import DistanceOracle


@dataclass
class URPSMInstance:
    """One URPSM problem: network + oracle + workers + time-ordered requests.

    Attributes:
        network: the road network.
        oracle: the shared distance oracle over ``network``.
        workers: the fleet.
        requests: requests sorted by release time (enforced by
            :meth:`validate`).
        objective: the (alpha, penalty) parameterisation.
        name: human-readable name used in reports.
    """

    network: RoadNetwork
    oracle: DistanceOracle
    workers: list[Worker]
    requests: list[Request]
    objective: ObjectiveConfig = field(default_factory=paper_default_objective)
    name: str = "urpsm-instance"

    def validate(self) -> None:
        """Check referential integrity; raise :class:`ConfigurationError` otherwise."""
        if not self.workers:
            raise ConfigurationError("an instance needs at least one worker")
        worker_ids = [worker.id for worker in self.workers]
        if len(set(worker_ids)) != len(worker_ids):
            raise ConfigurationError("duplicate worker identifiers")
        request_ids = [request.id for request in self.requests]
        if len(set(request_ids)) != len(request_ids):
            raise ConfigurationError("duplicate request identifiers")
        for worker in self.workers:
            if not self.network.has_vertex(worker.initial_location):
                raise ConfigurationError(
                    f"worker {worker.id} starts at unknown vertex {worker.initial_location}"
                )
        previous_release = float("-inf")
        for request in self.requests:
            if not self.network.has_vertex(request.origin):
                raise ConfigurationError(
                    f"request {request.id} has unknown origin {request.origin}"
                )
            if not self.network.has_vertex(request.destination):
                raise ConfigurationError(
                    f"request {request.id} has unknown destination {request.destination}"
                )
            if request.release_time < previous_release:
                raise ConfigurationError("requests must be sorted by release time")
            previous_release = request.release_time

    # ------------------------------------------------------------ statistics

    def statistics(self) -> dict[str, float]:
        """Aggregate instance statistics (Table 4 flavour)."""
        stats = self.network.statistics()
        stats.update(
            {
                "workers": float(len(self.workers)),
                "requests": float(len(self.requests)),
                "alpha": self.objective.alpha,
            }
        )
        if self.requests:
            horizons = [request.time_window for request in self.requests]
            stats["mean_time_window_s"] = sum(horizons) / len(horizons)
            stats["horizon_s"] = max(request.release_time for request in self.requests)
        return stats

    @property
    def num_workers(self) -> int:
        """Fleet size |W|."""
        return len(self.workers)

    @property
    def num_requests(self) -> int:
        """Number of requests |R|."""
        return len(self.requests)
