"""A self-contained URPSM problem instance.

Bundles the road network (with its distance oracle), the worker fleet, the
request stream and the objective parameterisation. The dynamic simulator
consumes instances; the workload generators produce them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.objective import ObjectiveConfig, paper_default_objective
from repro.core.types import Request, Worker
from repro.exceptions import ConfigurationError
from repro.network.graph import RoadNetwork
from repro.network.oracle import DistanceOracle


@dataclass(frozen=True, slots=True)
class WorkerShift:
    """Duty window of one worker (dynamic-fleet extension).

    Outside ``[start, end]`` the worker accepts no new assignments; the window
    is inclusive at both bounds (a request released exactly at ``end`` may
    still be assigned — :class:`~repro.simulation.events.WorkerOffline` sorts
    after arrivals at the same timestamp). A route in progress at ``end`` is
    still completed. ``end=None`` means the shift never ends. At most one
    shift per worker is supported.
    """

    worker_id: int
    start: float = 0.0
    end: float | None = None


@dataclass(frozen=True, slots=True)
class Cancellation:
    """A rider cancelling request ``request_id`` at absolute ``time``."""

    request_id: int
    time: float


@dataclass
class InstanceDynamics:
    """Optional dynamic-fleet behaviour layered on top of an instance.

    The seed's request-stream loop cannot replay these; they require the
    event-driven kernel (:mod:`repro.simulation.engine`).
    """

    cancellations: list[Cancellation] = field(default_factory=list)
    shifts: list[WorkerShift] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        """Whether there is no dynamic behaviour at all."""
        return not self.cancellations and not self.shifts


@dataclass
class URPSMInstance:
    """One URPSM problem: network + oracle + workers + time-ordered requests.

    Attributes:
        network: the road network.
        oracle: the shared distance oracle over ``network``.
        workers: the fleet.
        requests: requests sorted by release time (enforced by
            :meth:`validate`).
        objective: the (alpha, penalty) parameterisation.
        name: human-readable name used in reports.
        dynamics: optional cancellations / worker shifts (event kernel only).
    """

    network: RoadNetwork
    oracle: DistanceOracle
    workers: list[Worker]
    requests: list[Request]
    objective: ObjectiveConfig = field(default_factory=paper_default_objective)
    name: str = "urpsm-instance"
    dynamics: InstanceDynamics | None = None

    def validate(self) -> None:
        """Check referential integrity; raise :class:`ConfigurationError` otherwise."""
        if not self.workers:
            raise ConfigurationError("an instance needs at least one worker")
        worker_ids = [worker.id for worker in self.workers]
        if len(set(worker_ids)) != len(worker_ids):
            raise ConfigurationError("duplicate worker identifiers")
        request_ids = [request.id for request in self.requests]
        if len(set(request_ids)) != len(request_ids):
            raise ConfigurationError("duplicate request identifiers")
        for worker in self.workers:
            if not self.network.has_vertex(worker.initial_location):
                raise ConfigurationError(
                    f"worker {worker.id} starts at unknown vertex {worker.initial_location}"
                )
        previous_release = float("-inf")
        for request in self.requests:
            if not self.network.has_vertex(request.origin):
                raise ConfigurationError(
                    f"request {request.id} has unknown origin {request.origin}"
                )
            if not self.network.has_vertex(request.destination):
                raise ConfigurationError(
                    f"request {request.id} has unknown destination {request.destination}"
                )
            if request.release_time < previous_release:
                raise ConfigurationError("requests must be sorted by release time")
            previous_release = request.release_time
        self._validate_dynamics()

    def _validate_dynamics(self) -> None:
        if self.dynamics is None:
            return
        worker_ids = {worker.id for worker in self.workers}
        requests_by_id = {request.id: request for request in self.requests}
        shifted_workers: set[int] = set()
        for shift in self.dynamics.shifts:
            if shift.worker_id not in worker_ids:
                raise ConfigurationError(f"shift references unknown worker {shift.worker_id}")
            if shift.worker_id in shifted_workers:
                raise ConfigurationError(
                    f"worker {shift.worker_id} has more than one shift; "
                    "only one duty window per worker is supported"
                )
            shifted_workers.add(shift.worker_id)
            if shift.start < 0:
                raise ConfigurationError(f"worker {shift.worker_id}: negative shift start")
            if shift.end is not None and shift.end <= shift.start:
                raise ConfigurationError(
                    f"worker {shift.worker_id}: shift ends at {shift.end} "
                    f"before it starts at {shift.start}"
                )
        for cancellation in self.dynamics.cancellations:
            request = requests_by_id.get(cancellation.request_id)
            if request is None:
                raise ConfigurationError(
                    f"cancellation references unknown request {cancellation.request_id}"
                )
            if cancellation.time < request.release_time:
                raise ConfigurationError(
                    f"request {request.id} cancelled at {cancellation.time} "
                    f"before its release at {request.release_time}"
                )

    # ------------------------------------------------------------ statistics

    def statistics(self) -> dict[str, float]:
        """Aggregate instance statistics (Table 4 flavour)."""
        stats = self.network.statistics()
        stats.update(
            {
                "workers": float(len(self.workers)),
                "requests": float(len(self.requests)),
                "alpha": self.objective.alpha,
            }
        )
        if self.requests:
            horizons = [request.time_window for request in self.requests]
            stats["mean_time_window_s"] = sum(horizons) / len(horizons)
            stats["horizon_s"] = max(request.release_time for request in self.requests)
        return stats

    @property
    def num_workers(self) -> int:
        """Fleet size |W|."""
        return len(self.workers)

    @property
    def num_requests(self) -> int:
        """Number of requests |R|."""
        return len(self.requests)
