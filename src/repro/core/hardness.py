"""Executable versions of the hardness constructions (Section 3.3, Lemmas 1-3).

The paper proves that no online algorithm — deterministic or randomised — has a
constant competitive ratio for the URPSM problem or its special cases. The
proofs build adversarial input distributions on an undirected cycle graph:

* **Lemma 1** (maximise served requests): a single request released at time
  ``|V|`` with a uniformly random origin, destination equal to the origin, and
  an arbitrarily small service window. The offline optimum always serves it;
  an online algorithm whose worker sits at a fixed point serves it with
  probability at most ``2 / |V|``.
* **Lemma 2** (maximise revenue): as Lemma 1 but the destination is the
  antipodal vertex, so rejecting costs ``c_r * |V| / 2`` while the optimal
  travel cost is at most ``c_w * |V|``.
* **Lemma 3** (minimise distance, serve all): as Lemma 1 with infinite penalty.

These constructions are exposed as instance generators plus a small empirical
harness that estimates the expected cost ratio ``E[ALG] / E[OPT]`` of any
dispatcher as a function of ``|V|`` — the ratio must grow without bound, which
is exactly what ``benchmarks/bench_hardness_ratio.py`` demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.instance import URPSMInstance
from repro.core.objective import ObjectiveConfig, PenaltyPolicy
from repro.core.types import Request, Worker
from repro.network.generators import cycle_network
from repro.network.oracle import DistanceOracle
from repro.utils.rng import make_rng

# One cycle edge costs exactly one second of travel so that |V| doubles as the
# time horizon used in the lemma statements.
_EDGE_METRES = 10.0
_EDGE_SPEED = 10.0


@dataclass(frozen=True)
class HardnessInstanceSpec:
    """Parameters of one adversarial draw."""

    lemma: int
    num_vertices: int
    epsilon: float = 0.5
    worker_capacity: int = 2
    fare_per_second: float = 4.0
    worker_cost_per_second: float = 1.0


def _base_network_and_worker(spec: HardnessInstanceSpec):
    network = cycle_network(spec.num_vertices, edge_metres=_EDGE_METRES, speed=_EDGE_SPEED)
    oracle = DistanceOracle(network, use_hub_labels=False)
    worker = Worker(id=0, initial_location=0, capacity=spec.worker_capacity)
    return network, oracle, worker


def lemma1_instance(spec: HardnessInstanceSpec, rng: np.random.Generator) -> URPSMInstance:
    """One draw of the Lemma 1 distribution (maximise served requests)."""
    network, oracle, worker = _base_network_and_worker(spec)
    release = float(spec.num_vertices)
    origin = int(rng.integers(spec.num_vertices))
    request = Request(
        id=0,
        origin=origin,
        destination=origin,
        release_time=release,
        deadline=release + spec.epsilon,
        penalty=1.0,
        capacity=1,
    )
    objective = ObjectiveConfig(alpha=0.0, penalty_policy=PenaltyPolicy.FIXED, penalty_value=1.0)
    return URPSMInstance(
        network=network,
        oracle=oracle,
        workers=[worker],
        requests=[request],
        objective=objective,
        name=f"lemma1-V{spec.num_vertices}",
    )


def lemma2_instance(spec: HardnessInstanceSpec, rng: np.random.Generator) -> URPSMInstance:
    """One draw of the Lemma 2 distribution (maximise platform revenue)."""
    network, oracle, worker = _base_network_and_worker(spec)
    release = float(spec.num_vertices)
    origin = int(rng.integers(spec.num_vertices))
    destination = (origin + spec.num_vertices // 2) % spec.num_vertices
    direct = oracle.distance(origin, destination)
    request = Request(
        id=0,
        origin=origin,
        destination=destination,
        release_time=release,
        deadline=release + direct + spec.epsilon,
        penalty=spec.fare_per_second * direct,
        capacity=1,
    )
    objective = ObjectiveConfig(
        alpha=spec.worker_cost_per_second,
        penalty_policy=PenaltyPolicy.PROPORTIONAL,
        penalty_value=spec.fare_per_second,
    )
    return URPSMInstance(
        network=network,
        oracle=oracle,
        workers=[worker],
        requests=[request],
        objective=objective,
        name=f"lemma2-V{spec.num_vertices}",
    )


def lemma3_instance(spec: HardnessInstanceSpec, rng: np.random.Generator) -> URPSMInstance:
    """One draw of the Lemma 3 distribution (minimise distance, serve all).

    The "infinite" penalty is represented by a large finite surrogate so that
    the empirical ratio stays numerically meaningful; the surrogate grows with
    ``|V|`` which preserves the unbounded-ratio conclusion.
    """
    network, oracle, worker = _base_network_and_worker(spec)
    release = float(spec.num_vertices)
    origin = int(rng.integers(spec.num_vertices))
    surrogate_penalty = float(spec.num_vertices**2)
    request = Request(
        id=0,
        origin=origin,
        destination=origin,
        release_time=release,
        deadline=release + spec.epsilon,
        penalty=surrogate_penalty,
        capacity=1,
    )
    objective = ObjectiveConfig(
        alpha=1.0, penalty_policy=PenaltyPolicy.FIXED, penalty_value=surrogate_penalty
    )
    return URPSMInstance(
        network=network,
        oracle=oracle,
        workers=[worker],
        requests=[request],
        objective=objective,
        name=f"lemma3-V{spec.num_vertices}",
    )


_GENERATORS: dict[int, Callable[[HardnessInstanceSpec, np.random.Generator], URPSMInstance]] = {
    1: lemma1_instance,
    2: lemma2_instance,
    3: lemma3_instance,
}


def adversarial_instance(
    spec: HardnessInstanceSpec, rng: np.random.Generator
) -> URPSMInstance:
    """One draw of the distribution of the requested lemma."""
    try:
        generator = _GENERATORS[spec.lemma]
    except KeyError as exc:
        raise ValueError(f"unknown lemma {spec.lemma}; expected 1, 2 or 3") from exc
    return generator(spec, rng)


def optimal_cost(instance: URPSMInstance) -> float:
    """Offline-optimal unified cost for the single-request adversarial instances.

    The omniscient adversary-optimal strategy pre-positions the worker at the
    (not yet revealed) origin during the ``|V|``-second warm-up, so it pays only
    the travel cost ``alpha * (dis(o_w, o_r) + dis(o_r, d_r))``, never the
    penalty. Moving to any vertex takes at most ``|V| / 2 <= |V|`` seconds, so
    the pre-positioning always completes in time.
    """
    request = instance.requests[0]
    worker = instance.workers[0]
    reach = instance.oracle.distance(worker.initial_location, request.origin)
    direct = instance.oracle.distance(request.origin, request.destination)
    return instance.objective.alpha * (reach + direct)


@dataclass
class HardnessEstimate:
    """Empirical competitive-ratio estimate for one lemma and one |V|."""

    lemma: int
    num_vertices: int
    trials: int
    mean_algorithm_cost: float
    mean_optimal_cost: float
    unserved_fraction: float

    @property
    def ratio(self) -> float:
        """``E[ALG] / E[OPT]`` (``inf`` when the optimum costs zero but ALG does not)."""
        if self.mean_optimal_cost <= 0.0:
            return float("inf") if self.mean_algorithm_cost > 0 else 1.0
        return self.mean_algorithm_cost / self.mean_optimal_cost


def estimate_competitive_ratio(
    lemma: int,
    num_vertices: int,
    run_algorithm: Callable[[URPSMInstance], tuple[float, int]],
    trials: int = 30,
    seed: int = 2018,
) -> HardnessEstimate:
    """Estimate ``E[ALG] / E[OPT]`` over ``trials`` draws of the lemma's distribution.

    Args:
        lemma: 1, 2 or 3.
        num_vertices: cycle size |V| (even values match the paper's construction).
        run_algorithm: callable returning ``(unified_cost, served_count)`` for an
            instance — typically a thin wrapper around the simulator.
        trials: number of independent draws.
        seed: RNG seed.
    """
    rng = make_rng(seed)
    spec = HardnessInstanceSpec(lemma=lemma, num_vertices=num_vertices)
    algorithm_costs: list[float] = []
    optimal_costs: list[float] = []
    unserved = 0
    for _ in range(trials):
        instance = adversarial_instance(spec, rng)
        cost, served = run_algorithm(instance)
        algorithm_costs.append(cost)
        optimal_costs.append(optimal_cost(instance))
        if served == 0:
            unserved += 1
    return HardnessEstimate(
        lemma=lemma,
        num_vertices=num_vertices,
        trials=trials,
        mean_algorithm_cost=float(np.mean(algorithm_costs)),
        mean_optimal_cost=float(np.mean(optimal_costs)),
        unserved_fraction=unserved / trials,
    )
