"""A miniature instance in the spirit of Example 1 of the paper.

The paper illustrates URPSM on an eight-vertex road network with two workers
and three dynamically released requests (Fig. 1 / Table 1). The published
excerpt does not include the full figure, and the distances quoted across
Examples 1-3 are not mutually consistent with a shortest-path metric, so this
module builds a *self-consistent* instance with the same shape: eight
vertices, two workers of capacity four, three unit-capacity requests released
at times 0, 5 and 11 with short deadlines and modest penalties. It is used by
the quickstart example and by tests that exercise the end-to-end flow on a
hand-checkable instance.
"""

from __future__ import annotations

from repro.core.instance import URPSMInstance
from repro.core.objective import ObjectiveConfig, PenaltyPolicy
from repro.core.types import Request, Worker
from repro.network.graph import RoadNetwork
from repro.network.oracle import DistanceOracle
from repro.utils.geometry import Point

# Vertex grid (coordinates in metres); edges are horizontal/vertical segments
# travelled at 1 m/s so costs equal Euclidean lengths and are easy to verify
# by hand.
_COORDINATES = {
    1: Point(0.0, 10.0),
    2: Point(10.0, 10.0),
    3: Point(20.0, 10.0),
    4: Point(10.0, 0.0),
    5: Point(20.0, 0.0),
    6: Point(0.0, 0.0),
    7: Point(0.0, 20.0),
    8: Point(10.0, 20.0),
}

_EDGES = [
    (1, 2),
    (2, 3),
    (1, 6),
    (2, 4),
    (3, 5),
    (4, 5),
    (6, 4),
    (7, 1),
    (7, 8),
    (8, 2),
]


def example_network() -> RoadNetwork:
    """The eight-vertex road network used by the worked example."""
    network = RoadNetwork(name="paper-example")
    for vertex, point in _COORDINATES.items():
        network.add_vertex(vertex, point)
    for u, v in _EDGES:
        network.add_edge(u, v, speed=1.0, road_class="street")
    return network


def example_instance(alpha: float = 1.0) -> URPSMInstance:
    """Two workers, three requests, alpha = 1 — Example 1 reshaped to be consistent."""
    network = example_network()
    oracle = DistanceOracle(network, use_hub_labels=True)
    workers = [
        Worker(id=1, initial_location=7, capacity=4),
        Worker(id=2, initial_location=3, capacity=4),
    ]
    # Penalties keep the 20 : 10 : 9 proportions of Table 1 but are scaled so
    # that serving each request is clearly cheaper than rejecting it (the edge
    # costs here are tens of seconds, not unit lengths).
    requests = [
        Request(id=1, origin=2, destination=4, release_time=0.0, deadline=40.0, penalty=200.0),
        Request(id=2, origin=3, destination=5, release_time=5.0, deadline=45.0, penalty=100.0),
        Request(id=3, origin=8, destination=5, release_time=11.0, deadline=60.0, penalty=90.0),
    ]
    objective = ObjectiveConfig(
        alpha=alpha, penalty_policy=PenaltyPolicy.FIXED, penalty_value=10.0
    )
    return URPSMInstance(
        network=network,
        oracle=oracle,
        workers=workers,
        requests=requests,
        objective=objective,
        name="paper-example",
    )
