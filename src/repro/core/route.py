"""Routes and their auxiliary arrays (Definition 4 and Section 4.3.2).

A route of a worker is ``S_w = <l_0, l_1, ..., l_n>`` where ``l_0`` is the
worker's *current* position and ``l_1..l_n`` are pending pickup / drop-off
stops. A route is feasible iff

1. for every served request, the pickup precedes the drop-off (or the request
   is already on board, in which case only the drop-off remains);
2. every drop-off is reached no later than the request's deadline;
3. the on-board load never exceeds the worker capacity.

To support the DP insertions, the route maintains the four auxiliary arrays of
the paper (Eq. 6-9):

* ``arr[k]``   — arrival time at ``l_k`` (``arr[0]`` is the current time);
* ``ddl[k]``   — latest tolerable arrival at ``l_k``;
* ``slack[k]`` — maximal tolerable detour between ``l_k`` and ``l_{k+1}``;
* ``picked[k]`` — on-board load right after serving ``l_k``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.types import Request, Stop, StopKind, Worker, dropoff_stop, pickup_stop
from repro.exceptions import InfeasibleRouteError
from repro.network.graph import Vertex
from repro.network.oracle import DistanceOracle

INFINITY = math.inf


@dataclass
class Route:
    """Planned route of one worker.

    Attributes:
        worker: the worker executing the route.
        origin: current position ``l_0`` of the worker (a vertex).
        start_time: time at which the worker is (or was last known to be) at
            ``origin``; this is ``arr[0]``.
        stops: the pending stops ``l_1..l_n`` in visiting order.
    """

    worker: Worker
    origin: Vertex
    start_time: float
    stops: list[Stop] = field(default_factory=list)

    # Auxiliary arrays, each of length ``len(stops) + 1`` (index 0 = l_0).
    arr: list[float] = field(default_factory=list, repr=False)
    ddl: list[float] = field(default_factory=list, repr=False)
    slack: list[float] = field(default_factory=list, repr=False)
    picked: list[int] = field(default_factory=list, repr=False)

    # Cached direct origin->destination distances per request id (the ``L`` of
    # Lemma 7); filled lazily so ddl[] can be recomputed without re-querying.
    _direct_distances: dict[int, float] = field(default_factory=dict, repr=False)

    # Remaining concrete shortest path ``origin -> stops[0]`` as computed at
    # the last advance; lets partial advancement continue along the already
    # chosen path instead of re-deriving it (and its tie-breaks) every event.
    # Never survives a re-planning: route mutations build new Route objects.
    concrete_path: tuple[Vertex, ...] | None = field(
        default=None, repr=False, compare=False
    )

    # ------------------------------------------------------------ properties

    @property
    def num_stops(self) -> int:
        """Number of pending stops ``n``."""
        return len(self.stops)

    @property
    def is_empty(self) -> bool:
        """Whether the route has no pending stop."""
        return not self.stops

    def vertex_at(self, index: int) -> Vertex:
        """Vertex of ``l_index`` (``index`` 0 means the worker's current position)."""
        if index == 0:
            return self.origin
        return self.stops[index - 1].vertex

    def onboard_requests(self) -> list[Request]:
        """Requests already picked up (their drop-off is pending, pickup is not)."""
        pending_pickups = {
            stop.request.id for stop in self.stops if stop.kind is StopKind.PICKUP
        }
        return [
            stop.request
            for stop in self.stops
            if stop.kind is StopKind.DROPOFF and stop.request.id not in pending_pickups
        ]

    def initial_load(self) -> int:
        """On-board load at ``l_0`` (sum of capacities of on-board requests).

        Single pass over the stops (no intermediate request lists) — this is
        called once per :meth:`refresh`, which sits on the simulator's hot
        advancement path.
        """
        stops = self.stops
        if not stops:
            return 0
        pending_pickups = {
            stop.request.id for stop in stops if stop.kind is StopKind.PICKUP
        }
        load = 0
        for stop in stops:
            if stop.kind is StopKind.DROPOFF and stop.request.id not in pending_pickups:
                load += stop.request.capacity
        return load

    def request_ids(self) -> set[int]:
        """Identifiers of every request appearing in the route."""
        return {stop.request.id for stop in self.stops}

    def direct_distance(self, request: Request, oracle: DistanceOracle) -> float:
        """Shortest distance ``dis(o_r, d_r)`` of ``request``, cached on the route."""
        cached = self._direct_distances.get(request.id)
        if cached is None:
            cached = oracle.distance(request.origin, request.destination)
            self._direct_distances[request.id] = cached
        return cached

    def remember_direct_distance(self, request: Request, distance: float) -> None:
        """Seed the direct-distance cache (used when the caller already knows ``L``)."""
        self._direct_distances[request.id] = distance

    # -------------------------------------------------------------- refresh

    #: benchmark ablation switch (class-wide): route every refresh through
    #: :meth:`_refresh_legacy`, the seed's un-optimised implementation, so the
    #: hot-path benchmark can reconstruct the pre-PR per-touch cost.
    legacy_refresh = False

    def refresh(self, oracle: DistanceOracle) -> None:
        """Recompute ``arr``, ``ddl``, ``slack`` and ``picked`` (Eq. 6-9)."""
        if Route.legacy_refresh:
            self._refresh_legacy(oracle)
            return
        n = self.num_stops
        if n == 0:
            # idle workers are refreshed on every clock bump; skip the
            # general machinery for the trivial single-entry arrays
            self.arr = [self.start_time]
            self.ddl = [INFINITY]
            self.slack = [INFINITY]
            self.picked = [self.initial_load()]
            return
        arr = [0.0] * (n + 1)
        ddl = [INFINITY] * (n + 1)
        picked = [0] * (n + 1)
        slack = [INFINITY] * (n + 1)

        arr[0] = self.start_time
        picked[0] = self.initial_load()

        if n >= 4:
            # one grouped oracle call for all consecutive legs (identical
            # values and query counting to the scalar walk below); unboxed to
            # plain floats so the accumulation below stays on fast scalars
            vertices = [self.origin] + [stop.vertex for stop in self.stops]
            legs = oracle.distance_pairs(vertices[:-1], vertices[1:]).tolist()
        else:
            legs = None
        previous_vertex = self.origin
        for index, stop in enumerate(self.stops, start=1):
            if legs is not None:
                arr[index] = arr[index - 1] + legs[index - 1]
            else:
                arr[index] = arr[index - 1] + oracle.distance(previous_vertex, stop.vertex)
                previous_vertex = stop.vertex
            if stop.kind is StopKind.PICKUP:
                ddl[index] = stop.request.deadline - self.direct_distance(stop.request, oracle)
                picked[index] = picked[index - 1] + stop.request.capacity
            else:
                ddl[index] = stop.request.deadline
                picked[index] = picked[index - 1] - stop.request.capacity

        # slack[k] = min_{k' > k} (ddl[k'] - arr[k'])   (Eq. 8)
        slack[n] = INFINITY
        for index in range(n - 1, -1, -1):
            slack[index] = min(slack[index + 1], ddl[index + 1] - arr[index + 1])

        self.arr = arr
        self.ddl = ddl
        self.slack = slack
        self.picked = picked

    def _refresh_legacy(self, oracle: DistanceOracle) -> None:
        """The seed's refresh, kept verbatim as the benchmark baseline.

        Identical values to :meth:`refresh` (scalar leg queries in the same
        order, list-building ``initial_load``); only slower. Enabled through
        :attr:`legacy_refresh` by the hot-path benchmark's pre-PR
        reconstruction.
        """
        n = self.num_stops
        arr = [0.0] * (n + 1)
        ddl = [INFINITY] * (n + 1)
        picked = [0] * (n + 1)
        slack = [INFINITY] * (n + 1)

        arr[0] = self.start_time
        picked[0] = sum(request.capacity for request in self.onboard_requests())

        previous_vertex = self.origin
        for index, stop in enumerate(self.stops, start=1):
            arr[index] = arr[index - 1] + oracle.distance(previous_vertex, stop.vertex)
            previous_vertex = stop.vertex
            if stop.kind is StopKind.PICKUP:
                ddl[index] = stop.request.deadline - self.direct_distance(stop.request, oracle)
                picked[index] = picked[index - 1] + stop.request.capacity
            else:
                ddl[index] = stop.request.deadline
                picked[index] = picked[index - 1] - stop.request.capacity

        slack[n] = INFINITY
        for index in range(n - 1, -1, -1):
            slack[index] = min(slack[index + 1], ddl[index + 1] - arr[index + 1])

        self.arr = arr
        self.ddl = ddl
        self.slack = slack
        self.picked = picked

    # ---------------------------------------------------------- feasibility

    def is_feasible(self, oracle: DistanceOracle, refresh: bool = True) -> bool:
        """Whether the route satisfies precedence, deadline and capacity constraints."""
        try:
            self.validate(oracle, refresh=refresh)
        except InfeasibleRouteError:
            return False
        return True

    def validate(self, oracle: DistanceOracle, refresh: bool = True) -> None:
        """Raise :class:`InfeasibleRouteError` describing the first violated constraint."""
        if refresh or len(self.arr) != self.num_stops + 1:
            self.refresh(oracle)

        seen_pickups: set[int] = set()
        onboard_ids = {request.id for request in self.onboard_requests()}
        for index, stop in enumerate(self.stops, start=1):
            request = stop.request
            if stop.kind is StopKind.PICKUP:
                if request.id in seen_pickups:
                    raise InfeasibleRouteError(
                        f"request {request.id} is picked up twice in route of worker {self.worker.id}"
                    )
                seen_pickups.add(request.id)
            else:
                if request.id not in seen_pickups and request.id not in onboard_ids:
                    raise InfeasibleRouteError(
                        f"request {request.id} is dropped off before being picked up"
                    )
                # delivery deadline (constraint (ii) of Definition 4)
                if self.arr[index] > request.deadline + 1e-9:
                    raise InfeasibleRouteError(
                        f"request {request.id} delivered at {self.arr[index]:.1f} after "
                        f"deadline {request.deadline:.1f}"
                    )
            if self.picked[index] > self.worker.capacity:
                raise InfeasibleRouteError(
                    f"load {self.picked[index]} exceeds capacity {self.worker.capacity} "
                    f"at stop {index} of worker {self.worker.id}"
                )
            if self.picked[index] < 0:
                raise InfeasibleRouteError(
                    f"negative load {self.picked[index]} at stop {index} of worker {self.worker.id}"
                )

        # every pickup must have a matching later drop-off
        dropped = {
            stop.request.id for stop in self.stops if stop.kind is StopKind.DROPOFF
        }
        missing = seen_pickups - dropped
        if missing:
            raise InfeasibleRouteError(
                f"requests {sorted(missing)} are picked up but never dropped off"
            )

    # -------------------------------------------------------------- metrics

    def planned_cost(self, oracle: DistanceOracle, refresh: bool = False) -> float:
        """Remaining planned travel cost ``D(S_w)`` from ``l_0`` to ``l_n`` (seconds)."""
        if refresh or len(self.arr) != self.num_stops + 1:
            self.refresh(oracle)
        if not self.stops:
            return 0.0
        return self.arr[-1] - self.arr[0]

    # ------------------------------------------------------------ insertion

    def with_insertion(
        self,
        request: Request,
        pickup_index: int,
        dropoff_index: int,
        oracle: DistanceOracle,
        refresh: bool = True,
    ) -> "Route":
        """Return a new route with ``request`` inserted at positions ``(i, j)``.

        ``pickup_index`` = ``i`` places the pickup between ``l_i`` and
        ``l_{i+1}``; ``dropoff_index`` = ``j`` (with ``j >= i``) places the
        drop-off between ``l_j`` and ``l_{j+1}`` of the *original* route,
        matching Figure 2 of the paper.
        """
        n = self.num_stops
        i, j = pickup_index, dropoff_index
        if not 0 <= i <= j <= n:
            raise ValueError(f"invalid insertion positions ({i}, {j}) for a route of {n} stops")
        pickup = pickup_stop(request)
        dropoff = dropoff_stop(request)
        if i == j:
            new_stops = self.stops[:i] + [pickup, dropoff] + self.stops[i:]
        else:
            new_stops = (
                self.stops[:i] + [pickup] + self.stops[i:j] + [dropoff] + self.stops[j:]
            )
        route = Route(
            worker=self.worker,
            origin=self.origin,
            start_time=self.start_time,
            stops=new_stops,
            _direct_distances=dict(self._direct_distances),
        )
        if refresh:
            route.refresh(oracle)
        return route

    def copy(self) -> "Route":
        """Shallow copy with fresh (unfilled) auxiliary arrays."""
        return Route(
            worker=self.worker,
            origin=self.origin,
            start_time=self.start_time,
            stops=list(self.stops),
            _direct_distances=dict(self._direct_distances),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        description = ", ".join(
            f"{'+' if stop.is_pickup else '-'}r{stop.request.id}@{stop.vertex}"
            for stop in self.stops
        )
        return (
            f"Route(worker={self.worker.id}, origin={self.origin}, "
            f"t0={self.start_time:.1f}, [{description}])"
        )


def empty_route(worker: Worker, start_time: float = 0.0) -> Route:
    """A route with no pending stop for ``worker`` at its initial location."""
    return Route(worker=worker, origin=worker.initial_location, start_time=start_time)
