"""Core URPSM model: entities, routes, insertion operators, objective, hardness."""

from repro.core.instance import URPSMInstance
from repro.core.insertion import (
    BasicInsertion,
    InsertionOperator,
    InsertionResult,
    LinearDPInsertion,
    NaiveDPInsertion,
    euclidean_insertion_lower_bound,
)
from repro.core.objective import (
    ObjectiveConfig,
    PenaltyPolicy,
    max_revenue_objective,
    max_served_requests_objective,
    min_total_distance_objective,
    paper_default_objective,
    platform_revenue,
    unified_cost,
)
from repro.core.route import Route, empty_route
from repro.core.types import Request, Stop, StopKind, Worker, dropoff_stop, pickup_stop

__all__ = [
    "URPSMInstance",
    "BasicInsertion",
    "InsertionOperator",
    "InsertionResult",
    "LinearDPInsertion",
    "NaiveDPInsertion",
    "euclidean_insertion_lower_bound",
    "ObjectiveConfig",
    "PenaltyPolicy",
    "max_revenue_objective",
    "max_served_requests_objective",
    "min_total_distance_objective",
    "paper_default_objective",
    "platform_revenue",
    "unified_cost",
    "Route",
    "empty_route",
    "Request",
    "Stop",
    "StopKind",
    "Worker",
    "dropoff_stop",
    "pickup_stop",
]
