"""Linear DP insertion (Algorithm 3 of the paper): O(n) time and memory.

The operator never enumerates pickup/drop-off pairs. For every drop-off
position ``j`` it combines

* the drop-off detour ``det(l_j, d_r, l_{j+1})`` (constant for a fixed ``j``),
* with ``Dio[j] = min_{i < j} det(l_i, o_r, l_{i+1})``, the cheapest feasible
  pickup detour before ``j``, maintained incrementally by the dynamic program
  of Eq. (11)-(12),

and checks feasibility through Corollary 1. The special cases ``i = j``
(Fig. 2a / 2b) are evaluated directly, as in Algorithm 2. Lemma 6 guarantees
that whenever the recorded best pickup ``Plc[j]`` violates a constraint, no
other pickup position can help, so a single candidate per ``j`` suffices.

Deviation from the paper's pseudo-code: the early-exit of line 8
(``arr[j] + dis(o_r, d_r) > e_r``) is not provably safe for the general
``i < j`` case on road networks, so the default uses the provably safe
``arr[j] > e_r`` (any later drop-off happens after visiting ``l_j``). The
paper's more aggressive break is available via ``aggressive_break=True`` and is
exercised by the ablation benchmarks.
"""

from __future__ import annotations

from repro.core.insertion.base import (
    INFINITY,
    InsertionOperator,
    InsertionResult,
    _PairwiseDistances,
)
from repro.core.route import Route
from repro.core.types import Request
from repro.network.oracle import DistanceOracle


class LinearDPInsertion(InsertionOperator):
    """Linear-time best-insertion via the pickup-detour dynamic program.

    Args:
        aggressive_break: use the paper's stronger (but potentially lossy)
            early-exit condition instead of the conservative one.
        prefetch: batch the stop-to-endpoint distances of the whole scan range
            into one grouped oracle call (the early-exit index is computable
            from ``arr`` up front, so the batch covers exactly the indices the
            lazy walk would touch — values and query counters are identical).
            Disable to reproduce the scalar per-stop query pattern.
    """

    name = "linear-dp"

    def __init__(self, aggressive_break: bool = False, prefetch: bool = True) -> None:
        self.aggressive_break = aggressive_break
        self.prefetch = prefetch

    def best_insertion(
        self, route: Route, request: Request, oracle: DistanceOracle
    ) -> InsertionResult:
        worker = route.worker
        if request.capacity > worker.capacity:
            return InsertionResult.infeasible()
        if len(route.arr) != route.num_stops + 1:
            route.refresh(oracle)

        n = route.num_stops
        arr, slack, picked = route.arr, route.slack, route.picked
        free_capacity = worker.capacity - request.capacity
        deadline = request.deadline

        distances = _PairwiseDistances(route, request, oracle)
        direct = distances.direct
        if self.prefetch:
            scan_stop = self._scan_stop_index(arr, n, deadline, direct)
            # below ~4 stops the numpy round-trip costs more than the lazy
            # scalar walk; the query count is identical either way
            if scan_stop >= 4:
                distances.prefetch(scan_stop)

        best_delta = INFINITY
        best_pair: tuple[int, int] | None = None

        # Dio[j] / Plc[j] of Eq. (11)-(12), maintained incrementally: at the
        # start of iteration ``j`` they describe the cheapest feasible pickup
        # detour among i < j.
        dio = INFINITY
        plc = -1

        for j in range(n + 1):
            dist_j_origin = distances.to_origin(j)
            dist_j_destination = distances.to_destination(j)

            # ---- special cases i = j (Fig. 2a when j = n, Fig. 2b otherwise)
            if picked[j] <= free_capacity and arr[j] + dist_j_origin + direct <= deadline + 1e-9:
                if j == n:
                    delta_same = dist_j_origin + direct
                else:
                    delta_same = (
                        dist_j_origin
                        + direct
                        + distances.to_destination(j + 1)
                        - distances.leg(j)
                    )
                if delta_same <= slack[j] + 1e-9 and delta_same < best_delta - 1e-9:
                    best_delta = delta_same
                    best_pair = (j, j)

            # ---- general case i < j via the DP state (Corollary 1)
            if j > 0 and dio < INFINITY:
                if j == n:
                    detour_destination = dist_j_destination
                else:
                    detour_destination = (
                        dist_j_destination
                        + distances.to_destination(j + 1)
                        - distances.leg(j)
                    )
                capacity_ok = picked[j] <= free_capacity
                deadline_ok = arr[j] + dio + dist_j_destination <= deadline + 1e-9
                slack_ok = dio + detour_destination <= slack[j] + 1e-9
                if capacity_ok and deadline_ok and slack_ok:
                    delta_split = detour_destination + dio
                    if delta_split < best_delta - 1e-9:
                        best_delta = delta_split
                        best_pair = (plc, j)

            # ---- early exit (line 8 of Algorithm 3)
            if self.aggressive_break:
                if arr[j] + direct > deadline:
                    break
            elif arr[j] > deadline:
                break

            # ---- extend the DP state to j + 1 (Eq. 11-12)
            if j < n:
                if picked[j] > free_capacity:
                    dio = INFINITY
                    plc = -1
                else:
                    detour_origin = (
                        dist_j_origin + distances.to_origin(j + 1) - distances.leg(j)
                    )
                    if detour_origin <= slack[j] + 1e-9 and detour_origin < dio:
                        dio = detour_origin
                        plc = j

        if best_pair is None:
            return InsertionResult.infeasible(distance_queries=distances.queries)
        return InsertionResult(
            feasible=True,
            delta=best_delta,
            pickup_index=best_pair[0],
            dropoff_index=best_pair[1],
            distance_queries=distances.queries,
        )

    def _scan_stop_index(
        self, arr: list[float], n: int, deadline: float, direct: float
    ) -> int:
        """Last stop index the DP scan visits before its early exit fires.

        Mirrors the break condition of the main loop (line 8 of Algorithm 3,
        or the conservative variant) using only the ``arr`` array — no oracle
        queries — so :meth:`_PairwiseDistances.prefetch` can batch exactly
        the distances the scan will read.
        """
        if self.aggressive_break:
            for j in range(n + 1):
                if arr[j] + direct > deadline:
                    return j
        else:
            for j in range(n + 1):
                if arr[j] > deadline:
                    return j
        return n
