"""Insertion operators: basic O(n^3), naive DP O(n^2), linear DP O(n), and the
Euclidean lower bound used by the decision phase."""

from repro.core.insertion.base import InsertionOperator, InsertionResult
from repro.core.insertion.basic import BasicInsertion
from repro.core.insertion.linear_dp import LinearDPInsertion
from repro.core.insertion.lower_bound import euclidean_insertion_lower_bound
from repro.core.insertion.naive_dp import NaiveDPInsertion

__all__ = [
    "InsertionOperator",
    "InsertionResult",
    "BasicInsertion",
    "NaiveDPInsertion",
    "LinearDPInsertion",
    "euclidean_insertion_lower_bound",
]
