"""Naive DP insertion (Algorithm 2 of the paper): O(n^2) time, O(n) memory.

The operator still enumerates every pair of insertion positions ``(i, j)`` but
evaluates each pair in O(1) using the auxiliary arrays of the route
(Eq. 6-9), the closed-form increased cost of Eq. (5), and the feasibility
conditions of Lemma 4 (deadlines) and Lemma 5 (capacity).

One deliberate deviation from the paper's pseudo-code: Algorithm 2 *breaks*
out of the inner loop when condition (3) or (4) of Lemma 4 fails, but those
conditions are not monotone in ``j`` on general road networks, so we
*continue* instead. The asymptotic complexity is unchanged and the operator
stays exactly equivalent to :class:`~repro.core.insertion.basic.BasicInsertion`
(property-tested).
"""

from __future__ import annotations

from repro.core.insertion.base import (
    INFINITY,
    InsertionOperator,
    InsertionResult,
    _PairwiseDistances,
)
from repro.core.route import Route
from repro.core.types import Request
from repro.network.oracle import DistanceOracle


class NaiveDPInsertion(InsertionOperator):
    """Quadratic-time best-insertion using the paper's O(1) pair evaluation."""

    name = "naive-dp"

    def best_insertion(
        self, route: Route, request: Request, oracle: DistanceOracle
    ) -> InsertionResult:
        worker = route.worker
        if request.capacity > worker.capacity:
            return InsertionResult.infeasible()
        if len(route.arr) != route.num_stops + 1:
            route.refresh(oracle)

        n = route.num_stops
        arr, slack, picked = route.arr, route.slack, route.picked
        free_capacity = worker.capacity - request.capacity
        deadline = request.deadline

        distances = _PairwiseDistances(route, request, oracle)
        direct = distances.direct

        best_delta = INFINITY
        best_pair: tuple[int, int] | None = None

        for i in range(n + 1):
            dist_i_origin = distances.to_origin(i)
            # Lemma 4 (1): the pickup itself must be reachable before the
            # deadline; monotone in i by the triangle inequality, so break.
            if arr[i] + dist_i_origin > deadline:
                break
            # Lemma 5 (1): capacity right after the pickup.
            if picked[i] > free_capacity:
                continue
            detour_origin = 0.0
            if i < n:
                detour_origin = dist_i_origin + distances.to_origin(i + 1) - distances.leg(i)
                # Lemma 4 (2): the pickup detour must respect every later deadline.
                if detour_origin > slack[i] + 1e-9:
                    continue

            for j in range(i, n + 1):
                # Lemma 5 (2): capacity along (i, j]; monotone in j, so break.
                if j > i and picked[j] > free_capacity:
                    break
                delta = _delta(distances, direct, i, j, n)
                if j == i:
                    # Lemma 4 (3), special cases of Fig. 2a / 2b.
                    if arr[i] + dist_i_origin + direct > deadline + 1e-9:
                        continue
                else:
                    # Lemma 4 (3), general case of Fig. 2c.
                    if arr[j] + detour_origin + distances.to_destination(j) > deadline + 1e-9:
                        continue
                # Lemma 4 (4): the total detour must respect deadlines after j.
                if delta > slack[j] + 1e-9:
                    continue
                if delta < best_delta - 1e-9:
                    best_delta = delta
                    best_pair = (i, j)

        if best_pair is None:
            return InsertionResult.infeasible(distance_queries=distances.queries)
        return InsertionResult(
            feasible=True,
            delta=best_delta,
            pickup_index=best_pair[0],
            dropoff_index=best_pair[1],
            distance_queries=distances.queries,
        )


def _delta(distances: _PairwiseDistances, direct: float, i: int, j: int, n: int) -> float:
    """Increased travel cost of inserting at ``(i, j)`` (Eq. 5)."""
    if i == j == n:
        return distances.to_origin(n) + direct
    if i == j:
        return (
            distances.to_origin(i)
            + direct
            + distances.to_destination(i + 1)
            - distances.leg(i)
        )
    detour_origin = distances.to_origin(i) + distances.to_origin(i + 1) - distances.leg(i)
    if j == n:
        detour_destination = distances.to_destination(n)
    else:
        detour_destination = (
            distances.to_destination(j) + distances.to_destination(j + 1) - distances.leg(j)
        )
    return detour_origin + detour_destination
