"""Basic insertion (Algorithm 1 of the paper): exhaustive O(n^3) search.

This is the reference operator: it enumerates every pair of insertion
positions, materialises the candidate route, and validates it with a full
feasibility re-computation. It is deliberately unoptimised — the DP operators
are property-tested against it — and it mirrors the insertion used by the
earlier systems the paper compares against.
"""

from __future__ import annotations

from repro.core.insertion.base import INFINITY, InsertionOperator, InsertionResult
from repro.core.route import Route
from repro.core.types import Request
from repro.network.oracle import DistanceOracle


class BasicInsertion(InsertionOperator):
    """Exhaustive best-insertion search with full per-candidate validation."""

    name = "basic"

    def best_insertion(
        self, route: Route, request: Request, oracle: DistanceOracle
    ) -> InsertionResult:
        if request.capacity > route.worker.capacity:
            return InsertionResult.infeasible()

        queries_before = oracle.counters.distance_queries
        if len(route.arr) != route.num_stops + 1:
            route.refresh(oracle)
        base_cost = route.planned_cost(oracle)

        best_delta = INFINITY
        best_pair: tuple[int, int] | None = None
        n = route.num_stops
        for pickup_index in range(n + 1):
            for dropoff_index in range(pickup_index, n + 1):
                candidate = route.with_insertion(
                    request, pickup_index, dropoff_index, oracle, refresh=True
                )
                if not candidate.is_feasible(oracle, refresh=False):
                    continue
                delta = candidate.planned_cost(oracle) - base_cost
                if delta < best_delta - 1e-9:
                    best_delta = delta
                    best_pair = (pickup_index, dropoff_index)

        queries = oracle.counters.distance_queries - queries_before
        if best_pair is None:
            return InsertionResult.infeasible(distance_queries=queries)
        return InsertionResult(
            feasible=True,
            delta=best_delta,
            pickup_index=best_pair[0],
            dropoff_index=best_pair[1],
            distance_queries=queries,
        )
