"""Euclidean lower bound on the minimal insertion cost (Section 5.1, Lemma 7).

The decision phase of ``pruneGreedyDP`` must estimate, for every candidate
worker, how much the best feasible insertion would increase the route cost —
*without* spending exact shortest-distance queries. The paper derives a lower
bound ``LB_{Δ*}`` by re-running the linear DP insertion with three changes:

* every unknown shortest distance is replaced by the admissible Euclidean
  bound (here: straight-line metres divided by the maximum network speed, so
  the bound stays valid in travel-time units);
* distances between consecutive route stops are recovered from the ``arr``
  array, costing no query at all;
* the only exact query is ``L = dis(o_r, d_r)``, computed once per request and
  shared by all workers (Algorithm 4, line 1).

Because the bound relaxes both the costs and the feasibility checks, it never
exceeds the true minimal increased cost of a feasible insertion; if even the
relaxed problem admits no insertion, ``inf`` is returned and the worker can be
skipped outright.
"""

from __future__ import annotations

import math

from repro.core.route import Route
from repro.core.types import Request
from repro.network.oracle import DistanceOracle

INFINITY = math.inf


def euclidean_insertion_lower_bound(
    route: Route,
    request: Request,
    oracle: DistanceOracle,
    direct_distance: float,
) -> float:
    """Lower bound on the minimal increased cost of inserting ``request``.

    Args:
        route: the worker's current route with fresh auxiliary arrays.
        request: the new request.
        oracle: distance oracle; only its (query-free) Euclidean lower bounds
            are used here.
        direct_distance: the exact ``L = dis(o_r, d_r)`` computed once by the
            caller (Algorithm 4, line 1).

    Returns:
        ``LB_{Δ*}`` in seconds, or ``inf`` when even the relaxed insertion is
        impossible (e.g. the request does not fit the worker's capacity).
    """
    worker = route.worker
    if request.capacity > worker.capacity:
        return INFINITY
    if len(route.arr) != route.num_stops + 1:
        route.refresh(oracle)

    n = route.num_stops
    arr, slack, picked = route.arr, route.slack, route.picked
    free_capacity = worker.capacity - request.capacity
    deadline = request.deadline

    def euclid_to_origin(index: int) -> float:
        return oracle.lower_bound(route.vertex_at(index), request.origin)

    def euclid_to_destination(index: int) -> float:
        return oracle.lower_bound(route.vertex_at(index), request.destination)

    def leg(index: int) -> float:
        return arr[index + 1] - arr[index]

    best = INFINITY
    # Dio^euc of Eq. (16): cheapest relaxed pickup detour among i < j.
    dio = INFINITY

    for j in range(n + 1):
        lb_j_origin = euclid_to_origin(j)
        lb_j_destination = euclid_to_destination(j)

        # special cases i = j (Eq. 15, first two branches)
        if picked[j] <= free_capacity and arr[j] + lb_j_origin + direct_distance <= deadline + 1e-9:
            if j == n:
                candidate = lb_j_origin + direct_distance
            else:
                candidate = (
                    lb_j_origin + direct_distance + euclid_to_destination(j + 1) - leg(j)
                )
            candidate = max(candidate, 0.0)
            if candidate <= slack[j] + 1e-9 and candidate < best:
                best = candidate

        # general case i < j (Eq. 17, third branch)
        if j > 0 and dio < INFINITY:
            if j == n:
                detour_destination = lb_j_destination
            else:
                detour_destination = (
                    lb_j_destination + euclid_to_destination(j + 1) - leg(j)
                )
            detour_destination = max(detour_destination, 0.0)
            capacity_ok = picked[j] <= free_capacity
            deadline_ok = arr[j] + dio + lb_j_destination <= deadline + 1e-9
            slack_ok = dio + detour_destination <= slack[j] + 1e-9
            if capacity_ok and deadline_ok and slack_ok:
                candidate = detour_destination + dio
                if candidate < best:
                    best = candidate

        # conservative early exit: any later drop-off happens after l_j
        if arr[j] > deadline:
            break

        # extend Dio^euc to j + 1 (Eq. 16)
        if j < n:
            if picked[j] > free_capacity:
                dio = INFINITY
            else:
                detour_origin = max(
                    lb_j_origin + euclid_to_origin(j + 1) - leg(j), 0.0
                )
                if detour_origin <= slack[j] + 1e-9 and detour_origin < dio:
                    dio = detour_origin

    return best
