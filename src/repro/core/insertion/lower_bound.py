"""Euclidean lower bound on the minimal insertion cost (Section 5.1, Lemma 7).

The decision phase of ``pruneGreedyDP`` must estimate, for every candidate
worker, how much the best feasible insertion would increase the route cost —
*without* spending exact shortest-distance queries. The paper derives a lower
bound ``LB_{Δ*}`` by re-running the linear DP insertion with three changes:

* every unknown shortest distance is replaced by the admissible Euclidean
  bound (here: straight-line metres divided by the maximum network speed, so
  the bound stays valid in travel-time units);
* distances between consecutive route stops are recovered from the ``arr``
  array, costing no query at all;
* the only exact query is ``L = dis(o_r, d_r)``, computed once per request and
  shared by all workers (Algorithm 4, line 1).

Because the bound relaxes both the costs and the feasibility checks, it never
exceeds the true minimal increased cost of a feasible insertion; if even the
relaxed problem admits no insertion, ``inf`` is returned and the worker can be
skipped outright.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.route import Route
from repro.core.types import Request
from repro.network.oracle import DistanceOracle

INFINITY = math.inf


def euclidean_insertion_lower_bound(
    route: Route,
    request: Request,
    oracle: DistanceOracle,
    direct_distance: float,
) -> float:
    """Lower bound on the minimal increased cost of inserting ``request``.

    Args:
        route: the worker's current route with fresh auxiliary arrays.
        request: the new request.
        oracle: distance oracle; only its (query-free) Euclidean lower bounds
            are used here.
        direct_distance: the exact ``L = dis(o_r, d_r)`` computed once by the
            caller (Algorithm 4, line 1).

    Returns:
        ``LB_{Δ*}`` in seconds, or ``inf`` when even the relaxed insertion is
        impossible (e.g. the request does not fit the worker's capacity).
    """
    worker = route.worker
    if request.capacity > worker.capacity:
        return INFINITY
    if len(route.arr) != route.num_stops + 1:
        route.refresh(oracle)

    n = route.num_stops
    arr, slack, picked = route.arr, route.slack, route.picked
    free_capacity = worker.capacity - request.capacity
    deadline = request.deadline

    def euclid_to_origin(index: int) -> float:
        return oracle.lower_bound(route.vertex_at(index), request.origin)

    def euclid_to_destination(index: int) -> float:
        return oracle.lower_bound(route.vertex_at(index), request.destination)

    def leg(index: int) -> float:
        return arr[index + 1] - arr[index]

    best = INFINITY
    # Dio^euc of Eq. (16): cheapest relaxed pickup detour among i < j.
    dio = INFINITY

    for j in range(n + 1):
        lb_j_origin = euclid_to_origin(j)
        lb_j_destination = euclid_to_destination(j)

        # special cases i = j (Eq. 15, first two branches)
        if picked[j] <= free_capacity and arr[j] + lb_j_origin + direct_distance <= deadline + 1e-9:
            if j == n:
                candidate = lb_j_origin + direct_distance
            else:
                candidate = (
                    lb_j_origin + direct_distance + euclid_to_destination(j + 1) - leg(j)
                )
            candidate = max(candidate, 0.0)
            if candidate <= slack[j] + 1e-9 and candidate < best:
                best = candidate

        # general case i < j (Eq. 17, third branch)
        if j > 0 and dio < INFINITY:
            if j == n:
                detour_destination = lb_j_destination
            else:
                detour_destination = (
                    lb_j_destination + euclid_to_destination(j + 1) - leg(j)
                )
            detour_destination = max(detour_destination, 0.0)
            capacity_ok = picked[j] <= free_capacity
            deadline_ok = arr[j] + dio + lb_j_destination <= deadline + 1e-9
            slack_ok = dio + detour_destination <= slack[j] + 1e-9
            if capacity_ok and deadline_ok and slack_ok:
                candidate = detour_destination + dio
                if candidate < best:
                    best = candidate

        # conservative early exit: any later drop-off happens after l_j
        if arr[j] > deadline:
            break

        # extend Dio^euc to j + 1 (Eq. 16)
        if j < n:
            if picked[j] > free_capacity:
                dio = INFINITY
            else:
                detour_origin = max(
                    lb_j_origin + euclid_to_origin(j + 1) - leg(j), 0.0
                )
                if detour_origin <= slack[j] + 1e-9 and detour_origin < dio:
                    dio = detour_origin

    return best


def euclidean_idle_lower_bounds(
    origins: Sequence[int],
    start_times: float | np.ndarray,
    request: Request,
    oracle: DistanceOracle,
    direct_distance: float,
    capacities: Sequence[int] | None = None,
) -> np.ndarray:
    """Closed-form ``LB_{Δ*}`` for idle workers (empty routes), vectorized.

    An empty route admits only the ``i = j = 0`` branch of Eq. (15) with
    ``picked[0] = 0`` and ``slack[0] = inf``, so the relaxed DP collapses to
    ``max(lb(origin, o_r) + L, 0)`` gated by the deadline check — the same
    IEEE operations the scalar walk performs, element for element.

    Args:
        origins: current vertex of each idle worker.
        start_times: ``arr[0]`` per worker, or one scalar when all idle
            workers share the decision clock.
        request: the request under decision.
        oracle: supplies the batched Euclidean bounds.
        direct_distance: ``L = dis(o_r, d_r)``.
        capacities: per-worker capacities; workers that cannot fit the
            request get ``inf``. ``None`` means the caller pre-filtered.
    """
    to_origin = oracle.euclidean_lower_bounds_to(origins, request.origin)
    candidate = np.maximum(to_origin + direct_distance, 0.0)
    feasible = start_times + to_origin + direct_distance <= request.deadline + 1e-9
    if capacities is not None:
        feasible &= np.asarray(capacities, dtype=np.int64) >= request.capacity
    return np.where(feasible, candidate, INFINITY)


def euclidean_insertion_lower_bounds(
    routes: Sequence[Route],
    request: Request,
    oracle: DistanceOracle,
    direct_distance: float,
) -> np.ndarray:
    """Vectorized :func:`euclidean_insertion_lower_bound` over a candidate set.

    Computes ``LB_{Δ*}`` for every route in ``routes`` in one pass: a single
    batched :meth:`~repro.network.oracle.DistanceOracle.euclidean_lower_bounds`
    call answers all stop-to-endpoint bounds, and the relaxed DP of Eq. (15)-
    (17) runs column-by-column over a padded ``(candidates, stops)`` matrix —
    the loop is over route *positions* (short), not candidates (wide).

    Returns a float64 array aligned with ``routes``; every element equals the
    scalar function's result bit for bit (same IEEE operations in the same
    order), with ``inf`` marking candidates without a relaxed insertion. Stale
    candidate routes are refreshed in order, exactly as the scalar loop would,
    so exact-query counters are unaffected by batching.
    """
    total = len(routes)
    bounds = np.full(total, INFINITY, dtype=np.float64)
    rows: list[int] = []
    for index, route in enumerate(routes):
        if request.capacity > route.worker.capacity:
            continue
        if len(route.arr) != route.num_stops + 1:
            route.refresh(oracle)
        rows.append(index)
    if not rows:
        return bounds

    # one fused pass over the candidates gathers every flat array the DP
    # needs, with idle workers (the typical majority) split off: an empty
    # route collapses Eq. (15) to one closed-form branch at j = 0
    empty_rows: list[int] = []
    empty_vertices: list[int] = []
    empty_start: list[float] = []
    busy_rows: list[int] = []
    flat_vertices: list[int] = []
    flat_arr: list[float] = []
    flat_slack: list[float] = []
    flat_picked: list[int] = []
    counts_list: list[int] = []
    capacities: list[int] = []
    for index in rows:
        route = routes[index]
        stops = route.stops
        if not stops:
            empty_rows.append(index)
            empty_vertices.append(route.origin)
            empty_start.append(route.arr[0])
            continue
        busy_rows.append(index)
        counts_list.append(len(stops) + 1)
        capacities.append(route.worker.capacity)
        flat_vertices.append(route.origin)
        for stop in stops:
            flat_vertices.append(stop.vertex)
        flat_arr.extend(route.arr)
        flat_slack.extend(route.slack)
        flat_picked.extend(route.picked)

    if empty_rows:
        # empty route: only branch j = 0 = n of Eq. (15) applies — delegate
        # to the shared closed form (capacity was already filtered above)
        bounds[empty_rows] = euclidean_idle_lower_bounds(
            empty_vertices,
            np.asarray(empty_start, dtype=np.float64),
            request,
            oracle,
            direct_distance,
        )
    if not busy_rows:
        return bounds

    count = len(busy_rows)
    counts = np.asarray(counts_list, dtype=np.int64)
    ns = counts - 1
    width = int(ns.max()) + 1
    # one batched lower-bound pass answers both endpoints for every stop
    flat_origin, flat_destination = oracle.euclidean_lower_bounds(
        flat_vertices, request.origin, request.destination
    )

    # padded (candidate, stop) matrices, built with one flat scatter each; one
    # spare column keeps every j+1 read in range
    row_of = np.repeat(np.arange(count), counts)
    col_of = np.arange(row_of.size) - np.repeat(
        np.concatenate(([0], np.cumsum(counts)[:-1])), counts
    )
    flat_index = row_of * (width + 1) + col_of

    def scatter(values: np.ndarray) -> np.ndarray:
        matrix = np.zeros(count * (width + 1), dtype=np.float64)
        matrix[flat_index] = values
        return matrix.reshape(count, width + 1)

    lb_origin = scatter(flat_origin)
    lb_destination = scatter(flat_destination)
    arr = scatter(np.asarray(flat_arr, dtype=np.float64))
    slack = scatter(np.asarray(flat_slack, dtype=np.float64))
    picked = scatter(np.asarray(flat_picked, dtype=np.float64))

    free_capacity = (
        np.asarray(capacities, dtype=np.float64) - request.capacity
    )[:, None]
    deadline = request.deadline
    direct = direct_distance
    columns = np.arange(width)
    ns_column = ns[:, None]

    # static per-(candidate, j) quantities of the relaxed DP
    lb_o = lb_origin[:, :width]
    lb_o_next = lb_origin[:, 1 : width + 1]
    lb_d = lb_destination[:, :width]
    lb_d_next = lb_destination[:, 1 : width + 1]
    arr_j = arr[:, :width]
    leg = arr[:, 1 : width + 1] - arr[:, :width]
    slack_tol = slack[:, :width] + 1e-9
    capacity_ok = picked[:, :width] <= free_capacity
    is_last = columns[None, :] == ns_column
    in_route = columns[None, :] <= ns_column
    # the conservative early exit evaluates branches at the first j whose
    # arrival exceeds the deadline, then breaks: arrivals are non-decreasing,
    # so the scanned prefix is exactly {arr[j'] <= deadline for all j' < j}
    not_exceeded = arr_j <= deadline
    scanned = in_route & np.logical_and.accumulate(
        np.concatenate((np.ones((count, 1), dtype=bool), not_exceeded[:, :-1]), axis=1),
        axis=1,
    )

    # Dio^euc of Eq. (16): prefix-min with capacity resets over the pickup
    # detours; the only truly sequential recurrence, run column-wise
    extendable = scanned & not_exceeded & (columns[None, :] < ns_column)
    detour_origin = np.maximum(lb_o + lb_o_next - leg, 0.0)
    candidate_valo = np.where(
        extendable & capacity_ok & (detour_origin <= slack_tol),
        detour_origin,
        INFINITY,
    )
    resets = extendable & ~capacity_ok
    dio = np.empty((count, width), dtype=np.float64)
    # without resets the recurrence is a plain prefix-min, one accumulate;
    # rows that do hit a capacity reset (rare) replay the scan column-wise
    dio[:, 0] = INFINITY
    if width > 1:
        dio[:, 1:] = np.minimum.accumulate(candidate_valo, axis=1)[:, :-1]
    reset_rows = np.flatnonzero(resets.any(axis=1))
    for row in reset_rows:
        running = INFINITY
        valo_row = candidate_valo[row]
        resets_row = resets[row]
        for j in range(width):
            dio[row, j] = running  # value *entering* iteration j (i < j)
            if resets_row[j]:
                running = INFINITY
            value = valo_row[j]
            if value < running:
                running = value

    # special cases i = j (Eq. 15, first two branches)
    candidate_same = np.maximum(
        np.where(is_last, lb_o + direct, lb_o + direct + lb_d_next - leg), 0.0
    )
    feasible_same = (
        scanned
        & capacity_ok
        & (arr_j + lb_o + direct <= deadline + 1e-9)
        & (candidate_same <= slack_tol)
    )
    best_same = np.where(feasible_same, candidate_same, INFINITY).min(axis=1)

    # general case i < j (Eq. 17, third branch)
    detour_destination = np.maximum(
        np.where(is_last, lb_d, lb_d + lb_d_next - leg), 0.0
    )
    candidate_split = detour_destination + dio
    feasible_split = (
        scanned
        & (columns[None, :] > 0)
        & (dio < INFINITY)
        & capacity_ok
        & (arr_j + dio + lb_d <= deadline + 1e-9)
        & (dio + detour_destination <= slack_tol)
    )
    best_split = np.where(feasible_split, candidate_split, INFINITY).min(axis=1)

    bounds[busy_rows] = np.minimum(best_same, best_split)
    return bounds
