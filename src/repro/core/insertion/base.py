"""Shared interface of the insertion operators (Definition 6 of the paper).

Given a worker's current route ``S_w`` and a new request ``r``, an insertion
operator finds the feasible positions ``(i, j)`` for the pickup and drop-off of
``r`` that minimise the increased travel cost, keeping the relative order of
the existing stops unchanged.

Three operators are provided, matching Section 4 of the paper:

====================  =========================  ==========================
Operator              Time complexity            Module
====================  =========================  ==========================
``BasicInsertion``    O(n^3)                      :mod:`repro.core.insertion.basic`
``NaiveDPInsertion``  O(n^2)                      :mod:`repro.core.insertion.naive_dp`
``LinearDPInsertion`` O(n)                        :mod:`repro.core.insertion.linear_dp`
====================  =========================  ==========================

All three return the same minimal increased cost (property-tested); they differ
only in running time and in the number of shortest-distance queries issued.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from repro.core.route import Route
from repro.core.types import Request
from repro.network.oracle import DistanceOracle

INFINITY = math.inf


@dataclass(frozen=True, slots=True)
class InsertionResult:
    """Outcome of a best-insertion search.

    Attributes:
        feasible: whether any feasible insertion exists.
        delta: minimal increased travel cost ``Δ*`` (``inf`` when infeasible).
        pickup_index: best pickup position ``i`` (``-1`` when infeasible).
        dropoff_index: best drop-off position ``j`` (``-1`` when infeasible).
        distance_queries: exact shortest-distance queries the operator issued.
    """

    feasible: bool
    delta: float
    pickup_index: int
    dropoff_index: int
    distance_queries: int = 0

    @staticmethod
    def infeasible(distance_queries: int = 0) -> "InsertionResult":
        """The canonical "no feasible insertion" result."""
        return InsertionResult(
            feasible=False,
            delta=INFINITY,
            pickup_index=-1,
            dropoff_index=-1,
            distance_queries=distance_queries,
        )


class InsertionOperator(abc.ABC):
    """Abstract best-insertion search over a single worker's route."""

    #: Human-readable operator name used in benchmark reports.
    name: str = "insertion"

    @abc.abstractmethod
    def best_insertion(
        self, route: Route, request: Request, oracle: DistanceOracle
    ) -> InsertionResult:
        """Find the feasible insertion of ``request`` with minimal increased cost.

        The route's auxiliary arrays must be up to date (call
        :meth:`repro.core.route.Route.refresh` after any modification); the
        operator itself never mutates ``route``.
        """

    def insert(
        self, route: Route, request: Request, oracle: DistanceOracle
    ) -> tuple[Route | None, InsertionResult]:
        """Search for the best insertion and, if feasible, apply it.

        Returns:
            ``(new_route, result)`` where ``new_route`` is ``None`` when no
            feasible insertion exists.
        """
        result = self.best_insertion(route, request, oracle)
        if not result.feasible:
            return None, result
        new_route = route.with_insertion(
            request, result.pickup_index, result.dropoff_index, oracle
        )
        return new_route, result


class _PairwiseDistances:
    """Per-call memo of the distances between route stops and o_r / d_r.

    Caching these keeps the DP operators at the 2n+1 exact queries of Lemma 9
    instead of re-querying the oracle for every (i, j) pair. On top of the
    lazy memo, :meth:`prefetch` answers a whole index range with two grouped
    :meth:`~repro.network.oracle.DistanceOracle.distances_many` calls, so the
    linear DP issues one batched oracle round-trip per insertion instead of
    ~2n scalar calls — with exactly the same values and counter increments.
    """

    def __init__(self, route: Route, request: Request, oracle: DistanceOracle) -> None:
        self._route = route
        self._request = request
        self._oracle = oracle
        self._to_origin: dict[int, float] = {}
        self._to_destination: dict[int, float] = {}
        self.queries = 0
        # L = dis(o_r, d_r): exactly one query, shared with ddl computations.
        self.direct = route.direct_distance(request, oracle)
        self.queries += 1

    def prefetch(self, last_index: int) -> None:
        """Batch-fetch ``dis(l_k, o_r)`` and ``dis(l_k, d_r)`` for ``k <= last_index``.

        The caller passes the last stop index its scan can reach (the DP's
        early-exit position, computable from ``arr`` without any query), so
        the grouped fetch issues exactly the queries the lazy scalar walk
        would have issued — the oracle counters stay identical.
        """
        route = self._route
        missing = [k for k in range(last_index + 1) if k not in self._to_origin]
        if not missing:
            return
        vertices = [route.vertex_at(k) for k in missing]
        to_origin, to_destination = self._oracle.endpoint_distances(
            vertices, self._request.origin, self._request.destination
        )
        self.queries += 2 * len(missing)
        to_origin_memo = self._to_origin
        to_destination_memo = self._to_destination
        # .tolist() unboxes to plain floats once; the DP's arithmetic on
        # numpy scalars would pay boxing on every operation otherwise
        for k, value_origin, value_destination in zip(
            missing, to_origin.tolist(), to_destination.tolist()
        ):
            to_origin_memo[k] = value_origin
            to_destination_memo[k] = value_destination

    def to_origin(self, index: int) -> float:
        """dis(l_index, o_r)."""
        value = self._to_origin.get(index)
        if value is None:
            value = self._oracle.distance(self._route.vertex_at(index), self._request.origin)
            self._to_origin[index] = value
            self.queries += 1
        return value

    def to_destination(self, index: int) -> float:
        """dis(l_index, d_r)."""
        value = self._to_destination.get(index)
        if value is None:
            value = self._oracle.distance(
                self._route.vertex_at(index), self._request.destination
            )
            self._to_destination[index] = value
            self.queries += 1
        return value

    def leg(self, index: int) -> float:
        """dis(l_index, l_{index+1}) recovered from the ``arr`` array (no query)."""
        return self._route.arr[index + 1] - self._route.arr[index]
