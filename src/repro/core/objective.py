"""The unified objective of URPSM (Definition 5) and its special cases.

The unified cost of a plan is

    UC(W, R) = alpha * sum_w D(S_w) + sum_{r in R-} p_r

where ``D(S_w)`` is the total travel cost of worker ``w`` and ``R-`` the set of
rejected requests. Section 3.2 of the paper shows that three classic objectives
are special cases:

* minimise total travel distance while serving all requests
  (``alpha = 1``, ``p_r = inf``);
* maximise the number of served requests (``alpha = 0``, ``p_r = 1``);
* maximise platform revenue (``alpha = c_w``, ``p_r = c_r * dis(o_r, d_r)``).

:class:`ObjectiveConfig` captures a (alpha, penalty-policy) pair, the
``*_objective`` factory functions build the three presets, and
:func:`unified_cost` / :func:`platform_revenue` evaluate plans.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable

from repro.core.types import Request
from repro.utils.validation import require_non_negative


class PenaltyPolicy(enum.Enum):
    """How the rejection penalty ``p_r`` of a request is derived."""

    FIXED = "fixed"
    """Every request has the same constant penalty."""

    PROPORTIONAL = "proportional"
    """``p_r = factor * dis(o_r, d_r)`` (the paper's default, Table 5)."""

    INFINITE = "infinite"
    """Rejection is forbidden (``p_r = inf``)."""


@dataclass(frozen=True)
class ObjectiveConfig:
    """A parameterisation of the unified objective.

    Attributes:
        alpha: weight of the total travel cost.
        penalty_policy: how per-request penalties are derived.
        penalty_value: the constant (FIXED) or the multiplicative factor
            (PROPORTIONAL); ignored for INFINITE.
    """

    alpha: float
    penalty_policy: PenaltyPolicy = PenaltyPolicy.PROPORTIONAL
    penalty_value: float = 10.0

    def __post_init__(self) -> None:
        require_non_negative(self.alpha, "alpha")
        if self.penalty_policy is not PenaltyPolicy.INFINITE:
            require_non_negative(self.penalty_value, "penalty_value")

    def penalty_for(self, direct_distance: float) -> float:
        """Penalty ``p_r`` of a request whose shortest o->d cost is ``direct_distance``."""
        if self.penalty_policy is PenaltyPolicy.INFINITE:
            return math.inf
        if self.penalty_policy is PenaltyPolicy.FIXED:
            return self.penalty_value
        return self.penalty_value * direct_distance


def min_total_distance_objective() -> ObjectiveConfig:
    """``alpha = 1`` and ``p_r = inf``: minimise distance while serving everything."""
    return ObjectiveConfig(alpha=1.0, penalty_policy=PenaltyPolicy.INFINITE, penalty_value=0.0)


def max_served_requests_objective() -> ObjectiveConfig:
    """``alpha = 0`` and ``p_r = 1``: maximise the number of served requests."""
    return ObjectiveConfig(alpha=0.0, penalty_policy=PenaltyPolicy.FIXED, penalty_value=1.0)


def max_revenue_objective(worker_cost_per_second: float, fare_per_second: float) -> ObjectiveConfig:
    """``alpha = c_w`` and ``p_r = c_r * dis(o_r, d_r)``: maximise platform revenue."""
    return ObjectiveConfig(
        alpha=worker_cost_per_second,
        penalty_policy=PenaltyPolicy.PROPORTIONAL,
        penalty_value=fare_per_second,
    )


def paper_default_objective(penalty_factor: float = 10.0) -> ObjectiveConfig:
    """The evaluation default of Table 5: ``alpha = 1``, ``p_r = factor * dis(o_r, d_r)``."""
    return ObjectiveConfig(
        alpha=1.0, penalty_policy=PenaltyPolicy.PROPORTIONAL, penalty_value=penalty_factor
    )


def unified_cost(
    total_travel_cost: float, rejected_requests: Iterable[Request], alpha: float
) -> float:
    """Evaluate ``UC(W, R)`` from an executed plan (Eq. 1)."""
    penalty_sum = sum(request.penalty for request in rejected_requests)
    return alpha * total_travel_cost + penalty_sum


def platform_revenue(
    total_travel_cost: float,
    served_direct_distances: Iterable[float],
    worker_cost_per_second: float,
    fare_per_second: float,
) -> float:
    """Platform revenue of Eq. (2): fares of served requests minus worker cost.

    Useful to verify empirically the reduction of Section 3.2: with
    ``alpha = c_w`` and ``p_r = c_r * dis(o_r, d_r)``, minimising the unified
    cost is equivalent to maximising this quantity.
    """
    fares = fare_per_second * sum(served_direct_distances)
    return fares - worker_cost_per_second * total_travel_cost
