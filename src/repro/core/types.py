"""Problem entities of the URPSM model (Definitions 2-4 of the paper).

* :class:`Request` — origin, destination, release time, deadline, penalty and
  capacity (number of passengers / parcels).
* :class:`Worker` — initial location and capacity.
* :class:`Stop` — one pickup or drop-off location inside a planned route.

All times are seconds since the start of the simulation; all locations are
road-network vertex identifiers.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.network.graph import Vertex
from repro.utils.validation import require_non_negative, require_positive


@dataclass(frozen=True, slots=True)
class Request:
    """A transportation request (Definition 3).

    Attributes:
        id: unique identifier.
        origin: pickup vertex ``o_r``.
        destination: drop-off vertex ``d_r``.
        release_time: time ``t_r`` at which the platform learns about the request.
        deadline: delivery deadline ``e_r`` (absolute time).
        penalty: platform penalty ``p_r`` incurred if the request is rejected.
        capacity: ``K_r``, number of passengers / items in the request.
    """

    id: int
    origin: Vertex
    destination: Vertex
    release_time: float
    deadline: float
    penalty: float
    capacity: int = 1

    def __post_init__(self) -> None:
        require_non_negative(self.release_time, "release_time")
        require_non_negative(self.penalty, "penalty")
        require_positive(self.capacity, "capacity")
        if self.deadline < self.release_time:
            raise ValueError(
                f"request {self.id}: deadline {self.deadline} precedes release "
                f"time {self.release_time}"
            )

    @property
    def time_window(self) -> float:
        """Length of the service window ``e_r - t_r`` in seconds."""
        return self.deadline - self.release_time


@dataclass(frozen=True, slots=True)
class Worker:
    """A worker / vehicle (Definition 2).

    Attributes:
        id: unique identifier.
        initial_location: vertex ``o_w`` where the worker starts.
        capacity: ``K_w``, the maximum number of passengers / items carried at
            any moment.
    """

    id: int
    initial_location: Vertex
    capacity: int = 4

    def __post_init__(self) -> None:
        require_positive(self.capacity, "capacity")


class StopKind(enum.Enum):
    """Whether a route stop is a pickup (origin) or a drop-off (destination)."""

    PICKUP = "pickup"
    DROPOFF = "dropoff"


@dataclass(frozen=True, slots=True)
class Stop:
    """One location of a planned route, tied to a request.

    Attributes:
        vertex: the road-network vertex to visit.
        request: the request being picked up or dropped off.
        kind: pickup or drop-off.
    """

    vertex: Vertex
    request: Request
    kind: StopKind

    @property
    def is_pickup(self) -> bool:
        """Whether this stop picks up the request."""
        return self.kind is StopKind.PICKUP

    @property
    def is_dropoff(self) -> bool:
        """Whether this stop drops off the request."""
        return self.kind is StopKind.DROPOFF

    @property
    def load_change(self) -> int:
        """Signed change in on-board load when the stop is served."""
        return self.request.capacity if self.is_pickup else -self.request.capacity


def pickup_stop(request: Request) -> Stop:
    """The pickup stop of ``request``."""
    return Stop(vertex=request.origin, request=request, kind=StopKind.PICKUP)


def dropoff_stop(request: Request) -> Stop:
    """The drop-off stop of ``request``."""
    return Stop(vertex=request.destination, request=request, kind=StopKind.DROPOFF)


INFEASIBLE = math.inf
"""Sentinel increased-cost value meaning "no feasible insertion exists"."""
