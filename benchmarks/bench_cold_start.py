"""Cold-start benchmark of the content-addressed preprocessing store (PR 8).

For each scenario the persistable distance backends (dense APSP where the
network is small enough, contraction hierarchy, hub labels) are measured
through the full artifact life cycle:

1. **fresh** — build the backend from the network (the cold start every
   process paid before the store existed);
2. **save** — persist the built state into the content-addressed store;
3. **warm** — construct a new oracle with ``artifact_dir=`` pointing at the
   store and let it load the cached build.

The loaded backend must answer a seeded random query battery (scalar pairs,
one-to-many batches, shared-endpoint batches) **bit for bit** identically to
the freshly built one, and a full simulation run under each must produce
identical metrics — the warm start is never allowed to buy a behaviour
change (exit code 1 on any divergence).

On ``metro-grid`` the warm start carries the acceptance bar: loading the
contraction hierarchy from disk must be **>= 10x faster** than building it
(exit code 1 otherwise; the ``--smoke`` profile skips the bar along with the
metro-sized scenario).

Each run appends one entry per scenario to ``BENCH_cold_start.json``.

Usage::

    python benchmarks/bench_cold_start.py              # metro-grid + riverton
    python benchmarks/bench_cold_start.py --smoke      # CI-sized, < 60 s
    python benchmarks/bench_cold_start.py --scenario riverton
"""

from __future__ import annotations

import argparse
import platform
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from _trajectory import append_trajectory  # noqa: E402
from repro.artifacts import ArtifactStore, network_content_hash  # noqa: E402
from repro.core.instance import URPSMInstance  # noqa: E402
from repro.dispatch import DispatcherConfig  # noqa: E402
from repro.dispatch.greedy_dp import PruneGreedyDP  # noqa: E402
from repro.network.backends import APSP_VERTEX_LIMIT  # noqa: E402
from repro.network.oracle import DistanceOracle  # noqa: E402
from repro.simulation.simulator import Simulator  # noqa: E402
from repro.workloads.scenarios import (  # noqa: E402
    ScenarioConfig,
    build_instance,
    build_network,
)

#: scenarios; "metro" carries the >= 10x warm-start acceptance bar, and
#: "riverton" exercises the bundled real-map fixture end to end.
SCENARIOS = {
    "metro": ScenarioConfig(
        city="metro-grid", num_workers=100, num_requests=200, seed=2018
    ),
    "riverton": ScenarioConfig(
        city="riverton", num_workers=40, num_requests=120, seed=2018
    ),
    "smoke": ScenarioConfig(
        city="small-grid", num_workers=30, num_requests=120, seed=2018
    ),
}

#: the warm CH load on metro-grid must beat the fresh build by this factor.
METRO_WARM_SPEEDUP_BAR = 10.0

QUERY_BATTERY_PAIRS = 400
QUERY_BATTERY_BATCHES = 20


def query_battery(oracle: DistanceOracle, network, seed: int = 20180808):
    """Seeded random queries through every batched API; returns the floats."""
    rng = np.random.default_rng(seed)
    vertices = sorted(network.vertices())
    n = len(vertices)
    us = [vertices[i] for i in rng.integers(0, n, size=QUERY_BATTERY_PAIRS)]
    vs = [vertices[i] for i in rng.integers(0, n, size=QUERY_BATTERY_PAIRS)]
    outputs = [oracle.distance_pairs(us, vs)]
    for _ in range(QUERY_BATTERY_BATCHES):
        row = rng.integers(0, n, size=33)
        source = vertices[int(row[0])]
        targets = [vertices[int(i)] for i in row[1:]]
        outputs.append(oracle.distances_many(source, targets))
        to_origin, to_destination = oracle.endpoint_distances(
            targets, source, vertices[int(row[1])]
        )
        outputs.append(to_origin)
        outputs.append(to_destination)
    return outputs


def batteries_identical(fresh, warm) -> bool:
    return all(np.array_equal(a, b) for a, b in zip(fresh, warm))


def fingerprint(result) -> dict:
    """The metrics the fresh and warm oracle runs must agree on exactly."""
    return {
        "served": result.served_requests,
        "served_rate": result.served_rate,
        "unified_cost": result.unified_cost,
        "mean_wait_seconds": result.mean_wait_seconds,
        "mean_detour_ratio": result.mean_detour_ratio,
    }


def simulate(config, network, canonical, oracle) -> dict:
    """One simulation of the canonical workload under ``oracle``."""
    instance = URPSMInstance(
        network=network,
        oracle=oracle,
        workers=canonical.workers,
        requests=canonical.requests,
        objective=canonical.objective,
        name=canonical.name,
        dynamics=canonical.dynamics,
    )
    dispatcher = PruneGreedyDP(DispatcherConfig(grid_cell_metres=config.grid_km * 1000.0))
    return fingerprint(Simulator(instance, dispatcher).run())


def backends_for(network) -> list[str]:
    names = []
    if network.num_vertices <= APSP_VERTEX_LIMIT:
        names.append("apsp")
    names.extend(["ch", "hub_labels"])
    return names


def bench_scenario(name: str, store_root: Path) -> dict:
    config = SCENARIOS[name]
    network = build_network(config)
    content_hash = network_content_hash(network)
    store = ArtifactStore(store_root / name)
    # the canonical workload is generated once with the no-preprocessing
    # Dijkstra oracle and reused by every fresh/warm comparison run
    canonical = build_instance(
        config, network=network, oracle=DistanceOracle(network, backend="dijkstra")
    )
    print(
        f"== cold start: {name} ({config.city}, {network.num_vertices} vertices, "
        f"{network.num_edges} edges, hash {content_hash[:12]}) =="
    )

    backends: dict[str, dict] = {}
    all_identical = True
    for backend in backends_for(network):
        started = time.perf_counter()
        fresh = DistanceOracle(network, backend=backend)
        fresh_build_s = time.perf_counter() - started

        started = time.perf_counter()
        artifact_path = store.save_backend(network, fresh.backend, content_hash=content_hash)
        save_s = time.perf_counter() - started

        started = time.perf_counter()
        warm = DistanceOracle(network, backend=backend, artifact_dir=store.root)
        warm_load_s = time.perf_counter() - started
        if not warm.artifact_loaded:
            raise RuntimeError(f"{name}/{backend}: warm oracle did not load the artifact")

        bitwise = batteries_identical(
            query_battery(fresh, network), query_battery(warm, network)
        )
        fresh_metrics = simulate(config, network, canonical, fresh)
        warm_metrics = simulate(config, network, canonical, warm)
        metrics_identical = fresh_metrics == warm_metrics
        identical = bitwise and metrics_identical
        all_identical = all_identical and identical

        entry = {
            "fresh_build_s": round(fresh_build_s, 4),
            "save_s": round(save_s, 4),
            "warm_load_s": round(warm_load_s, 4),
            "warm_speedup": round(fresh_build_s / warm_load_s, 2) if warm_load_s > 0 else None,
            "artifact_bytes": artifact_path.stat().st_size,
            "bitwise_identical": bitwise,
            "metrics_identical": metrics_identical,
            "metrics": fresh_metrics,
        }
        backends[backend] = entry
        print(
            f"  {backend:>10}: fresh {fresh_build_s:7.3f}s  save {save_s:6.3f}s  "
            f"warm {warm_load_s:6.3f}s  ({entry['warm_speedup']}x)  "
            f"bitwise={bitwise}  metrics={metrics_identical}"
        )

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scenario": name,
        "city": config.city,
        "vertices": network.num_vertices,
        "edges": network.num_edges,
        "content_hash": content_hash,
        "backends": backends,
        "identical": all_identical,
        "python": platform.python_version(),
    }
    if name == "metro":
        ch = backends["ch"]
        entry["metro_warm_speedup"] = ch["warm_speedup"]
        entry["meets_10x_bar"] = (
            ch["warm_load_s"] > 0
            and ch["fresh_build_s"] / ch["warm_load_s"] >= METRO_WARM_SPEEDUP_BAR
        )
        print(
            f"  [metro] warm CH start {ch['warm_speedup']}x vs fresh build "
            f"(bar: >= {METRO_WARM_SPEEDUP_BAR}x, met: {entry['meets_10x_bar']})"
        )
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS) + ["default"],
        default="default",
        help="named scenario ('default' runs metro + riverton)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI profile: small-grid + riverton, no metro 10x bar",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_cold_start.json",
        help="perf-trajectory JSON file to append to",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        names = ["smoke", "riverton"]
    elif args.scenario == "default":
        names = ["metro", "riverton"]
    else:
        names = [args.scenario]

    with tempfile.TemporaryDirectory(prefix="repro-cold-start-") as tmp:
        entries = [bench_scenario(name, Path(tmp)) for name in names]
    append_trajectory(args.output, "cold_start", entries)

    failed = False
    for entry in entries:
        if not entry["identical"]:
            print(f"FAIL: {entry['scenario']}: warm-loaded backend diverges from fresh build")
            failed = True
        if entry.get("meets_10x_bar") is False:
            print(
                f"FAIL: {entry['scenario']}: warm CH start "
                f"{entry['metro_warm_speedup']}x < {METRO_WARM_SPEEDUP_BAR}x bar"
            )
            failed = True
    if failed:
        return 1
    for entry in entries:
        print(f"{entry['scenario']}: all artifact loads bit-identical to fresh builds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
