"""Empirical hardness benchmark (Section 3.3): the competitive ratio is unbounded.

For each of the three lemmas, the adversarial cycle-graph distribution is
sampled for growing |V| and a real online dispatcher (pruneGreedyDP) is run on
every draw. The expected-cost ratio against the clairvoyant optimum must grow
with |V| — the executable counterpart of "no constant competitive ratio".
"""

from __future__ import annotations

import pytest

from repro.core.hardness import estimate_competitive_ratio
from repro.dispatch import DispatcherConfig, PruneGreedyDP
from repro.service.facade import MatchingService

from benchmarks.conftest import emit

SIZES = [8, 16, 32, 64]
TRIALS = 20


def _run_dispatcher(instance):
    result = MatchingService(
        instance, PruneGreedyDP(DispatcherConfig(grid_cell_metres=50.0))
    ).replay()
    return result.unified_cost, result.served_requests


@pytest.mark.parametrize("lemma", [1, 2, 3])
def test_hardness_ratio_grows_with_cycle_size(benchmark, lemma):
    benchmark.group = f"hardness lemma {lemma}"

    def _sweep():
        return [
            estimate_competitive_ratio(lemma, size, _run_dispatcher, trials=TRIALS, seed=2018)
            for size in SIZES
        ]

    estimates = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    lines = [f"Lemma {lemma}: empirical E[ALG]/E[OPT] on cycle graphs"]
    for estimate in estimates:
        lines.append(
            f"  |V|={estimate.num_vertices:>3d}  E[ALG]={estimate.mean_algorithm_cost:>10.2f}  "
            f"E[OPT]={estimate.mean_optimal_cost:>10.2f}  unserved={estimate.unserved_fraction:.0%}"
        )
    emit("\n".join(lines))

    # the online algorithm misses the adversarial request more and more often
    assert estimates[-1].unserved_fraction >= estimates[0].unserved_fraction
    # and its expected cost does not vanish while the optimum stays bounded
    assert estimates[-1].mean_algorithm_cost > 0.0
