"""Figure 4 reproduction: performance while varying the worker capacity K_w.

Paper findings (Section 6.2, "Impact of Capacity of Workers"): larger
capacities lower the unified cost; pruneGreedyDP keeps the lowest unified cost
and highest served rate; kinetic degrades sharply (exponential search) as K_w
grows, which shows up here as rapidly growing response time under its node
budget.
"""

from __future__ import annotations

from repro.experiments.figures import figure4_capacity
from repro.experiments.reporting import format_figure

from benchmarks.conftest import bench_experiment, emit, run_figure_once


def test_figure4_vary_worker_capacity(benchmark, shared_runner):
    experiment = bench_experiment(cities=("chengdu-like", "nyc-like"))
    figure = run_figure_once(benchmark, figure4_capacity, experiment, shared_runner)
    emit(format_figure(figure))

    for city in figure.cities():
        cost = dict(figure.series(city, "pruneGreedyDP", "unified_cost"))
        capacities = sorted(cost)
        # a larger capacity can only help (more sharing opportunities)
        assert cost[capacities[-1]] <= cost[capacities[0]] * 1.02

        served_prune = dict(figure.series(city, "pruneGreedyDP", "served_rate"))
        served_tshare = dict(figure.series(city, "tshare", "served_rate"))
        # pruneGreedyDP serves at least as much as tshare at the default capacity
        assert served_prune[4] >= served_tshare[4] - 1e-9
