"""Figure 3 reproduction: performance while varying the number of workers |W|.

Paper findings the series should mirror (Section 6.2, "Impact of Number of
Workers"): unified cost decreases and served rate increases with more workers
for every algorithm; pruneGreedyDP attains the lowest unified cost and the
highest served rate; tshare is fastest but serves the fewest requests;
pruneGreedyDP issues fewer shortest-distance queries than GreedyDP.
"""

from __future__ import annotations

from repro.experiments.figures import figure3_workers
from repro.experiments.reporting import format_figure

from benchmarks.conftest import bench_experiment, emit, run_figure_once


def test_figure3_vary_number_of_workers(benchmark, shared_runner):
    experiment = bench_experiment()
    figure = run_figure_once(benchmark, figure3_workers, experiment, shared_runner)
    emit(format_figure(figure))

    for city in figure.cities():
        cost = dict(figure.series(city, "pruneGreedyDP", "unified_cost"))
        served = dict(figure.series(city, "pruneGreedyDP", "served_rate"))
        values = sorted(cost)
        # more workers -> lower unified cost and higher served rate
        assert cost[values[-1]] <= cost[values[0]]
        assert served[values[-1]] >= served[values[0]]

        # pruneGreedyDP never issues more distance queries than GreedyDP
        prune_queries = dict(figure.series(city, "pruneGreedyDP", "distance_queries"))
        plain_queries = dict(figure.series(city, "GreedyDP", "distance_queries"))
        assert sum(prune_queries.values()) <= sum(plain_queries.values())
