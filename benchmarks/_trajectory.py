"""Shared JSON perf-trajectory persistence for the benchmark scripts.

Every benchmark appends its run entries to a ``BENCH_*.json`` document of the
shape ``{"benchmark": <name>, "runs": [...]}`` so successive PRs can track
performance over time. The append/load logic used to be copy-pasted across
``bench_hot_path.py``, ``bench_sharding.py`` and ``bench_oracle.py``; this
module is the single implementation.
"""

from __future__ import annotations

import json
from pathlib import Path


def load_trajectory(path: Path, benchmark: str) -> dict:
    """The trajectory document at ``path`` (a fresh one when absent)."""
    if path.exists():
        return json.loads(path.read_text())
    return {"benchmark": benchmark, "runs": []}


def append_trajectory(path: Path, benchmark: str, entries: list[dict]) -> None:
    """Append the run entries to the JSON perf-trajectory file."""
    document = load_trajectory(path, benchmark)
    document["runs"].extend(entries)
    path.write_text(json.dumps(document, indent=2) + "\n")
    print(f"trajectory written to {path} ({len(document['runs'])} runs total)")


__all__ = ["append_trajectory", "load_trajectory"]
