"""Ablation benchmark: decision phase and pre-ordered pruning (Section 5).

Two comparisons back the design of pruneGreedyDP:

* the Euclidean lower bound of Lemma 7 is far cheaper than an exact linear DP
  insertion (it spends no exact distance query), which is why the decision
  phase can afford to scan every candidate worker;
* the pre-ordered pruning of Lemma 8 cuts the number of exact insertions and
  shortest-distance queries of the planning phase without changing the chosen
  worker's increased cost.
"""

from __future__ import annotations

import pytest

from repro.core.insertion.linear_dp import LinearDPInsertion
from repro.core.insertion.lower_bound import euclidean_insertion_lower_bound
from repro.dispatch import DispatcherConfig, GreedyDP, PruneGreedyDP
from repro.simulation.fleet import FleetState
from repro.service.facade import MatchingService
from repro.workloads.scenarios import ScenarioConfig, build_instance, build_network, make_oracle

from benchmarks.conftest import emit

_CONFIG = ScenarioConfig(city="chengdu-like", num_workers=40, num_requests=200, seed=2018)
_NETWORK = build_network(_CONFIG)
_ORACLE = make_oracle(_NETWORK, _CONFIG)
_INSTANCE = build_instance(_CONFIG, network=_NETWORK, oracle=_ORACLE)


def _fleet_with_history(num_requests: int = 60) -> FleetState:
    """A fleet warmed up by dispatching the first requests of the stream."""
    fleet = FleetState(_INSTANCE.workers, _ORACLE)
    dispatcher = GreedyDP(DispatcherConfig(grid_cell_metres=2000.0))
    dispatcher.setup(_INSTANCE, fleet)
    for request in _INSTANCE.requests[:num_requests]:
        fleet.advance_all(request.release_time)
        dispatcher.dispatch(request, request.release_time)
    return fleet


_FLEET = _fleet_with_history()
_PROBE = _INSTANCE.requests[80]
_DIRECT = _ORACLE.distance(_PROBE.origin, _PROBE.destination)
_BUSY_ROUTE = max((state.route for state in _FLEET), key=lambda route: route.num_stops)


def test_lower_bound_single_route(benchmark):
    """Lemma 7 bound on the busiest route of the warmed-up fleet."""
    benchmark.group = "decision phase (per route)"
    bound = benchmark(
        euclidean_insertion_lower_bound, _BUSY_ROUTE, _PROBE, _ORACLE, _DIRECT
    )
    assert bound >= 0.0


def test_exact_insertion_single_route(benchmark):
    """Exact linear DP insertion on the same route, for comparison."""
    benchmark.group = "decision phase (per route)"
    operator = LinearDPInsertion()
    benchmark(operator.best_insertion, _BUSY_ROUTE, _PROBE, _ORACLE)


@pytest.mark.parametrize("algorithm", [PruneGreedyDP, GreedyDP], ids=["pruneGreedyDP", "GreedyDP"])
def test_pruning_ablation_full_run(benchmark, algorithm):
    """Full simulation with and without Lemma 8 pruning; reports saved queries."""
    benchmark.group = "pruning ablation (full run)"

    def _run():
        return MatchingService(
            _INSTANCE, algorithm(DispatcherConfig(grid_cell_metres=2000.0))
        ).replay()

    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        f"[pruning ablation] {result.algorithm:>14s}: unified cost {result.unified_cost:,.0f}  "
        f"served {result.served_rate:.1%}  distance queries {result.distance_queries:,}  "
        f"insertions {result.insertions_evaluated:,}"
    )
    assert result.total_requests == _CONFIG.num_requests
