"""Ablation benchmark: which insertion operator powers the dispatcher?

DESIGN.md calls out the linear DP insertion as the key enabler of
pruneGreedyDP. This ablation swaps the operator used by the planning phase —
linear DP (the paper's choice), naive DP, and the exhaustive basic insertion —
while keeping everything else fixed, and reports the end-to-end effect on
response time and unified cost. The paper's claim is that the operators are
interchangeable in *quality* (identical Δ*) but not in *speed*.
"""

from __future__ import annotations

import pytest

from repro.core.insertion.basic import BasicInsertion
from repro.core.insertion.linear_dp import LinearDPInsertion
from repro.core.insertion.naive_dp import NaiveDPInsertion
from repro.dispatch import DispatcherConfig, PruneGreedyDP
from repro.service.facade import MatchingService
from repro.workloads.scenarios import ScenarioConfig, build_instance, build_network, make_oracle

from benchmarks.conftest import emit

_CONFIG = ScenarioConfig(city="chengdu-like", num_workers=40, num_requests=200, seed=2018)
_NETWORK = build_network(_CONFIG)
_ORACLE = make_oracle(_NETWORK, _CONFIG)

_OPERATORS = {
    "linear-dp": LinearDPInsertion,
    "naive-dp": NaiveDPInsertion,
    "basic": BasicInsertion,
}

_RESULTS: dict[str, object] = {}


@pytest.mark.parametrize("operator_name", list(_OPERATORS))
def test_prune_greedy_dp_with_operator(benchmark, operator_name):
    """Full pruneGreedyDP run with the given insertion operator."""
    benchmark.group = "dispatcher insertion-operator ablation"
    operator_class = _OPERATORS[operator_name]

    def _run():
        instance = build_instance(_CONFIG, network=_NETWORK, oracle=_ORACLE)
        dispatcher = PruneGreedyDP(
            DispatcherConfig(grid_cell_metres=2000.0), insertion=operator_class()
        )
        return MatchingService(instance, dispatcher).replay()

    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    _RESULTS[operator_name] = result
    emit(
        f"[insertion ablation] {operator_name:>9s}: unified cost {result.unified_cost:,.0f}  "
        f"served {result.served_rate:.1%}  response {result.response_time_seconds * 1000:.2f} ms"
    )
    assert result.total_requests == _CONFIG.num_requests

    # Quality is essentially operator-independent (every operator returns the
    # same minimal Δ*; trajectories may diverge slightly on exact ties between
    # insertion positions or workers), speed is not.
    if "linear-dp" in _RESULTS and operator_name != "linear-dp":
        reference = _RESULTS["linear-dp"]
        assert abs(result.served_requests - reference.served_requests) <= 1
        assert result.unified_cost == pytest.approx(reference.unified_cost, rel=5e-3)
