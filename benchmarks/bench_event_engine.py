"""Event kernel vs. seed request-stream loop on the ``nyc-like`` scenario.

The event-driven kernel claims two speed advantages over the seed loop:

* **lazy fleet advancement** — only workers touched by an event materialise
  their progress, instead of ``advance_all`` walking every worker's route at
  every release time (``O(|W|)`` shortest-path walks per request);
* **event scheduling** — batch flushes and stop completions are heap events
  rather than per-request polling.

This module measures both engines on the same ``nyc-like`` instance so the
claim is a number, not an assertion: wall-clock per run, per-request dispatch
latency (the paper's *response time*), and — for the event kernel — events
processed per second. It also double-checks that the two engines agree on
served requests and unified cost, so the speedup is never bought with a
behaviour change.

Size overrides: ``REPRO_BENCH_EVENT_WORKERS`` / ``REPRO_BENCH_EVENT_REQUESTS``.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.dispatch import DispatcherConfig, make_dispatcher
from repro.simulation.simulator import Simulator
from repro.workloads.scenarios import ScenarioConfig, build_instance, build_network, make_oracle

from benchmarks.conftest import emit

_CONFIG = ScenarioConfig(
    city="nyc-like",
    num_workers=int(os.environ.get("REPRO_BENCH_EVENT_WORKERS", "200")),
    num_requests=int(os.environ.get("REPRO_BENCH_EVENT_REQUESTS", "800")),
    seed=2018,
)
_NETWORK = build_network(_CONFIG)
_ORACLE = make_oracle(_NETWORK, _CONFIG)

_ALGORITHMS = ("pruneGreedyDP", "batch")

#: filled per (algorithm, engine) so the comparison block can be emitted once.
_RUNS: dict[tuple[str, str], dict[str, float]] = {}


def _run_once(algorithm: str, engine: str) -> dict[str, float]:
    instance = build_instance(_CONFIG, network=_NETWORK, oracle=_ORACLE)
    dispatcher = make_dispatcher(
        algorithm, DispatcherConfig(grid_cell_metres=_CONFIG.grid_km * 1000.0)
    )
    simulator = Simulator(instance, dispatcher, engine=engine)
    started = time.perf_counter()
    result = simulator.run()
    wall = time.perf_counter() - started
    stats = {
        "wall_seconds": wall,
        "served": float(result.served_requests),
        "unified_cost": result.unified_cost,
        "dispatch_latency_us": result.response_time_seconds * 1e6,
        "requests_per_second": result.total_requests / wall if wall > 0 else 0.0,
    }
    if engine == "event":
        events = simulator._backend.events_processed
        stats["events_processed"] = float(events)
        stats["events_per_second"] = events / wall if wall > 0 else 0.0
    return stats


@pytest.mark.parametrize("engine", ["legacy", "event"])
@pytest.mark.parametrize("algorithm", _ALGORITHMS)
def test_engine_throughput(benchmark, algorithm, engine):
    """One full simulation per engine; timings land in the benchmark table."""
    benchmark.group = f"event kernel vs seed loop ({algorithm}, {_CONFIG.city})"
    holder: dict[str, dict[str, float]] = {}

    def _go():
        holder["stats"] = _run_once(algorithm, engine)
        return holder["stats"]

    benchmark.pedantic(_go, rounds=1, iterations=1)
    stats = holder["stats"]
    _RUNS[(algorithm, engine)] = stats
    assert stats["served"] > 0

    lines = [
        f"{algorithm} / {engine}: wall {stats['wall_seconds']:.2f}s, "
        f"dispatch latency {stats['dispatch_latency_us']:.0f}us/request, "
        f"{stats['requests_per_second']:.0f} requests/s"
    ]
    if "events_per_second" in stats:
        lines.append(
            f"  events: {stats['events_processed']:.0f} processed, "
            f"{stats['events_per_second']:.0f} events/s"
        )
    other = _RUNS.get((algorithm, "legacy" if engine == "event" else "event"))
    if other is not None:
        event_stats = stats if engine == "event" else other
        legacy_stats = other if engine == "event" else stats
        # the speedup must never be bought with a behaviour change
        assert event_stats["served"] == legacy_stats["served"]
        assert event_stats["unified_cost"] == pytest.approx(legacy_stats["unified_cost"])
        speedup = legacy_stats["wall_seconds"] / max(event_stats["wall_seconds"], 1e-9)
        lines.append(
            f"  kernel speedup vs seed loop: {speedup:.2f}x "
            f"(identical served={int(event_stats['served'])}, "
            f"unified cost agrees)"
        )
    emit("\n".join(lines))
