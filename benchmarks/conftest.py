"""Shared helpers for the benchmark harness.

Every figure of the paper's evaluation has a corresponding
``bench_fig*_*.py`` module. The heavy lifting (building the synthetic cities,
running the sweeps) is delegated to :mod:`repro.experiments`; the modules here
only decide the scale (the ``REPRO_BENCH_SCALE`` environment variable, default
``small``), wrap the sweep in the pytest-benchmark fixture so timings land in
the benchmark table, and print the paper-style series so the run log doubles as
the data for ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.dispatch.registry import DispatcherSpec
from repro.service.spec import PlatformSpec
from repro.experiments.config import ExperimentConfig, PAPER_ALGORITHMS
from repro.experiments.runner import ScenarioRunner

#: scale preset used by the figure benchmarks; override with REPRO_BENCH_SCALE.
BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")

#: cities compared in every figure, mirroring the paper (Chengdu and NYC).
BENCH_CITIES = ("chengdu-like", "nyc-like")


def bench_experiment(
    cities=BENCH_CITIES,
    algorithms=tuple(PAPER_ALGORITHMS),
    scale: str = BENCH_SCALE,
    **extra,
) -> ExperimentConfig:
    """Experiment configuration shared by the figure benchmarks."""
    return ExperimentConfig(cities=tuple(cities), algorithms=tuple(algorithms), scale=scale, **extra)


@pytest.fixture(scope="session")
def shared_runner() -> ScenarioRunner:
    """One runner for the whole benchmark session so city/oracle builds are reused."""
    return ScenarioRunner(platform=PlatformSpec(
        dispatcher=DispatcherSpec(kinetic_node_budget=4000)
    ))


def emit(text: str) -> None:
    """Print a report block so it is captured in the benchmark run log."""
    sys.stdout.write("\n" + text + "\n")
    sys.stdout.flush()


def run_figure_once(benchmark, figure_function, experiment, runner):
    """Run a figure sweep exactly once under the benchmark fixture and report it."""
    result_holder = {}

    def _run():
        result_holder["figure"] = figure_function(experiment, runner)
        return result_holder["figure"]

    benchmark.pedantic(_run, rounds=1, iterations=1)
    return result_holder["figure"]
