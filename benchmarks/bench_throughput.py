"""Serving throughput: in-process loop vs the multiprocess cluster front door.

Replays the same workload through the :class:`MatchingService` session API in
three configurations — the plain single-process loop, the in-process sharded
wrapper, and the :class:`ClusterMatchingService` shard-worker processes — at
K ∈ {1, 2, 4}, recording for each:

* sustained throughput (requests / total wall, submissions + drain);
* per-decision latency percentiles (p50 / p99 over every ``submit`` call).

**Gate:** at every K>1 the cluster replay must be **bit-identical** to the
in-process ``sharded:<inner>`` wrapper at the same K — served requests,
unified cost, mean wait and mean detour all compare exact. At K=1 the
in-process wrapper stays bit-locked to the *lazy* unsharded dispatcher while
the cluster materialises exact positions for replica sync, so the two float
associations differ in the last ULP: served counts still compare exact and
the cost/wait/detour metrics are gated at 1e-9 relative. Any divergence
exits non-zero.

Throughput numbers are environment-dependent: on a single-CPU container the
worker processes time-share one core with the front door, so the cluster
cannot beat the in-process loop there — ``cpu_count`` is recorded in every
entry so trajectory readers can interpret the ratios. Cluster K=4 vs cluster
K=1 is the scaling signal that survives a serialised scheduler.

Usage::

    python benchmarks/bench_throughput.py                  # standard @ 300 workers
    python benchmarks/bench_throughput.py --smoke          # CI-sized, K=2 only
    python benchmarks/bench_throughput.py --shards 1 2 4 8
"""

from __future__ import annotations

import argparse
import math
import os
import platform
import statistics
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from _trajectory import append_trajectory  # noqa: E402
from repro.cluster.service import ClusterMatchingService  # noqa: E402
from repro.dispatch import DispatcherConfig, make_dispatcher  # noqa: E402
from repro.service.facade import MatchingService  # noqa: E402
from repro.workloads.scenarios import (  # noqa: E402
    ScenarioConfig,
    build_instance,
    build_network,
    make_oracle,
    paper_default_scenario,
)

SCENARIOS = {
    "standard": lambda workers: paper_default_scenario(num_workers=workers or 300),
    "smoke": lambda workers: ScenarioConfig(
        city="small-grid", num_workers=workers or 30, num_requests=150, seed=2018
    ),
}

ALGORITHMS = ("pruneGreedyDP", "batch")


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def run_once(config, network, algorithm: str, mode: str, shards: int):
    """One full service replay; returns (stats dict, result)."""
    oracle = make_oracle(network, config)
    instance = build_instance(config, network=network, oracle=oracle)
    dispatcher_config = DispatcherConfig(
        grid_cell_metres=config.grid_km * 1000.0, num_shards=max(shards, 1)
    )
    name = algorithm if mode == "in-process" else f"{mode}:{algorithm}"
    dispatcher = make_dispatcher(name, dispatcher_config)
    if mode == "cluster":
        service = ClusterMatchingService(instance, dispatcher)
    else:
        service = MatchingService(instance, dispatcher)
    latencies = []
    started = time.perf_counter()
    try:
        for request in instance.requests:
            decision_started = time.perf_counter()
            service.submit(request)
            latencies.append(time.perf_counter() - decision_started)
        result = service.drain()
    finally:
        close = getattr(service, "close", None)
        if close is not None:
            close()
    wall = time.perf_counter() - started
    latencies.sort()
    stats = {
        "wall_s": round(wall, 4),
        "requests_per_s": round(len(latencies) / wall, 1) if wall > 0 else 0.0,
        "p50_latency_ms": round(_percentile(latencies, 0.50) * 1e3, 4),
        "p99_latency_ms": round(_percentile(latencies, 0.99) * 1e3, 4),
    }
    return stats, result


def fingerprint(result) -> dict:
    return {
        "served": result.served_requests,
        "unified_cost": result.unified_cost,
        "mean_wait_s": result.mean_wait_seconds,
        "mean_detour_ratio": result.mean_detour_ratio,
    }


def equivalent(cluster_print: dict, sharded_print: dict, shards: int) -> bool:
    """Cluster vs in-process sharded at the same K must agree.

    Bit-exact at K>1 (both regimes materialise at every arrival/flush); at
    K=1 the in-process wrapper is lazy while the cluster is exact-positions,
    so the float metrics are compared at 1e-9 relative (see module docstring).
    """
    if shards > 1:
        return cluster_print == sharded_print
    if cluster_print["served"] != sharded_print["served"]:
        return False
    return all(
        math.isclose(cluster_print[key], sharded_print[key], rel_tol=1e-9, abs_tol=1e-9)
        for key in ("unified_cost", "mean_wait_s", "mean_detour_ratio")
    )


def bench_scenario(
    name: str, workers: int | None, repeats: int, shard_counts: list[int]
) -> dict:
    config = SCENARIOS[name](workers)
    network = build_network(config)

    def best_of(algorithm: str, mode: str, shards: int):
        best_stats, last_result = None, None
        for repeat in range(repeats):
            stats, last_result = run_once(config, network, algorithm, mode, shards)
            if best_stats is None or stats["wall_s"] < best_stats["wall_s"]:
                best_stats = stats
            label = mode if mode == "in-process" else f"{mode} K={shards}"
            print(
                f"  [{name}/{algorithm}] repeat {repeat + 1}/{repeats} {label:>16}: "
                f"{stats['wall_s']:6.2f}s  {stats['requests_per_s']:7.1f} req/s  "
                f"p99 {stats['p99_latency_ms']:.2f}ms"
            )
        return best_stats, last_result

    sweeps, all_equivalent = [], True
    for algorithm in ALGORITHMS:
        baseline_stats, baseline_result = best_of(algorithm, "in-process", 0)
        points = []
        for shards in shard_counts:
            sharded_stats, sharded_result = best_of(algorithm, "sharded", shards)
            cluster_stats, cluster_result = best_of(algorithm, "cluster", shards)
            identical = equivalent(
                fingerprint(cluster_result), fingerprint(sharded_result), shards
            )
            all_equivalent = all_equivalent and identical
            points.append(
                {
                    "shards": shards,
                    "sharded": sharded_stats,
                    "cluster": cluster_stats,
                    "cluster_vs_in_process": round(
                        baseline_stats["wall_s"] / cluster_stats["wall_s"], 3
                    ),
                    "metrics_identical_to_sharded": identical,
                    "cluster_worker_failures": cluster_result.extra.get(
                        "cluster_worker_failures"
                    ),
                }
            )
            print(
                f"  [{name}/{algorithm}] K={shards}: cluster "
                f"{cluster_stats['requests_per_s']} req/s vs sharded "
                f"{sharded_stats['requests_per_s']} req/s, identical: {identical}"
            )
        sweeps.append(
            {
                "algorithm": algorithm,
                "in_process": {**baseline_stats, "fingerprint": fingerprint(baseline_result)},
                "sweep": points,
            }
        )

    return {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scenario": name,
        "city": config.city,
        "workers": config.num_workers,
        "requests": config.num_requests,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "algorithms": sweeps,
        "all_equivalent": all_equivalent,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="standard",
        help="named scenario to run (default: standard)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI preset: smoke scenario, one repeat, K=2 only",
    )
    parser.add_argument("--workers", type=int, default=None, help="override the fleet size")
    parser.add_argument(
        "--repeats", type=int, default=2, help="runs per configuration (best-of)"
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4], help="shard counts to sweep"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_throughput.json",
        help="perf-trajectory JSON file to append to",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.scenario, args.repeats, args.shards = "smoke", 1, [2]

    print(f"== throughput benchmark: {args.scenario} ==")
    entry = bench_scenario(args.scenario, args.workers, args.repeats, args.shards)
    append_trajectory(args.output, "throughput", [entry])

    if not entry["all_equivalent"]:
        print("FAIL: cluster metrics diverge from the in-process sharded wrapper")
        return 1
    for sweep in entry["algorithms"]:
        points = ", ".join(
            f"K={p['shards']}: {p['cluster']['requests_per_s']} req/s"
            for p in sweep["sweep"]
        )
        print(
            f"{sweep['algorithm']}: in-process "
            f"{sweep['in_process']['requests_per_s']} req/s; cluster {points}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
