"""Benchmark of the pluggable distance-oracle backends (PR 5's tentpole).

For each scenario the same canonical workload (generated once with the
Dijkstra-fallback oracle — the seed's behaviour) is replayed under every
distance backend:

* **dijkstra**   — the baseline: cached bidirectional point-to-point searches
  plus the truncated multi-target fallback;
* **apsp**       — dense all-pairs matrix (skipped past
  ``APSP_VERTEX_LIMIT`` vertices, where the O(N^2) build/memory stops being
  sensible);
* **ch**         — contraction hierarchy with bucket-joined many-to-many;
* **hub_labels** — array-native pruned 2-hop labels (skipped on the largest
  scenario by default: the pruned construction is the one O(N * label^2)
  step left in Python — pass ``--all-backends`` to include it anyway).

Every backend must reproduce the Dijkstra baseline **bit for bit** on served
requests, unified cost, mean waits and mean detours — the speedup is never
allowed to buy a behaviour change (exit code 1 if any backend diverges).
Query counters are allowed to differ (a ulp-level distance difference can
flip a pruning early-exit) and are reported, not asserted.

Each run also measures build time and raw batched-query throughput
(``distances_many`` over seeded random batches, caches cleared first), and
appends one entry per scenario to ``BENCH_oracle.json`` so successive PRs can
track the oracle over time.

Usage::

    python benchmarks/bench_oracle.py                    # standard + nyc-like
    python benchmarks/bench_oracle.py --scenario smoke   # CI-sized, <60 s
    python benchmarks/bench_oracle.py --scenario metro   # past the APSP limit
    python benchmarks/bench_oracle.py --scenario all --repeats 5
"""

from __future__ import annotations

import argparse
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from _trajectory import append_trajectory  # noqa: E402
from repro.core.instance import URPSMInstance  # noqa: E402
from repro.dispatch import DispatcherConfig  # noqa: E402
from repro.dispatch.greedy_dp import PruneGreedyDP  # noqa: E402
from repro.network.backends import APSP_VERTEX_LIMIT, BACKEND_NAMES  # noqa: E402
from repro.network.oracle import DistanceOracle  # noqa: E402
from repro.simulation.simulator import Simulator  # noqa: E402
from repro.workloads.scenarios import (  # noqa: E402
    ScenarioConfig,
    build_instance,
    build_network,
    paper_default_scenario,
)

#: named benchmark scenarios; "nyc-like" carries the ">= 3x vs the Dijkstra
#: fallback" acceptance bar, "metro" is the city where the dense matrix is
#: ruled out by policy, "smoke" fits a CI minute.
SCENARIOS = {
    "standard": lambda workers: paper_default_scenario(num_workers=workers or 300),
    "nyc-like": lambda workers: ScenarioConfig(
        city="nyc-like", num_workers=workers or 300, num_requests=600, seed=2018
    ),
    "metro": lambda workers: ScenarioConfig(
        city="metro-grid", num_workers=workers or 400, num_requests=800, seed=2018
    ),
    "smoke": lambda workers: ScenarioConfig(
        city="small-grid", num_workers=workers or 30, num_requests=150, seed=2018
    ),
}

#: hub-label construction is the one heavyweight Python build left; skip it
#: by default on scenarios past this many vertices (``--all-backends`` forces).
HUB_BUILD_VERTEX_LIMIT = 2_000


def fingerprint(result) -> dict:
    """The metrics every backend must agree on exactly."""
    return {
        "served": result.served_requests,
        "served_rate": result.served_rate,
        "unified_cost": result.unified_cost,
        "mean_wait_seconds": result.mean_wait_seconds,
        "mean_detour_ratio": result.mean_detour_ratio,
    }


def simulate(config, network, canonical, oracle):
    """One full simulation of the canonical workload under ``oracle``."""
    instance = URPSMInstance(
        network=network,
        oracle=oracle,
        workers=canonical.workers,
        requests=canonical.requests,
        objective=canonical.objective,
        name=canonical.name,
        dynamics=canonical.dynamics,
    )
    dispatcher = PruneGreedyDP(DispatcherConfig(grid_cell_metres=config.grid_km * 1000.0))
    simulator = Simulator(instance, dispatcher)
    started = time.perf_counter()
    result = simulator.run()
    wall = time.perf_counter() - started
    return wall, result, oracle.counters.snapshot()


def query_throughput(oracle, network, batches: int = 50, batch_size: int = 32) -> float:
    """Raw batched ``distances_many`` queries/second on seeded random batches."""
    rng = np.random.default_rng(20180712)
    vertices = sorted(network.vertices())
    picks = rng.integers(0, len(vertices), size=(batches, batch_size + 1))
    oracle.clear_caches()
    total = batches * batch_size
    started = time.perf_counter()
    for row in picks:
        source = vertices[int(row[0])]
        targets = [vertices[int(i)] for i in row[1:]]
        oracle.distances_many(source, targets)
    elapsed = time.perf_counter() - started
    oracle.clear_caches()
    return total / elapsed if elapsed > 0 else float("inf")


def backend_names_for(config, network, all_backends: bool) -> list[tuple[str, str | None]]:
    """(backend, skip_reason) per backend for a scenario."""
    plan: list[tuple[str, str | None]] = []
    for name in BACKEND_NAMES:
        reason = None
        if not all_backends:
            if name == "apsp" and network.num_vertices > APSP_VERTEX_LIMIT:
                reason = f"dense matrix past APSP_VERTEX_LIMIT ({APSP_VERTEX_LIMIT})"
            elif name == "hub_labels" and network.num_vertices > HUB_BUILD_VERTEX_LIMIT:
                reason = "pruned label build too slow at this scale (use --all-backends)"
        plan.append((name, reason))
    # the baseline runs first so every other backend can compare against it
    plan.sort(key=lambda item: item[0] != "dijkstra")
    return plan


def bench_scenario(name: str, workers: int | None, repeats: int, all_backends: bool) -> dict:
    config = SCENARIOS[name](workers)
    network = build_network(config)
    # the canonical workload: generated once with the Dijkstra fallback (the
    # seed's behaviour), shared by every backend run — request penalties are
    # inputs, not something a backend may perturb
    canonical = build_instance(
        config, network=network, oracle=DistanceOracle(network, backend="dijkstra")
    )
    print(
        f"== oracle benchmark: {name} ({config.city}, {network.num_vertices} vertices, "
        f"{config.num_workers} workers, {config.num_requests} requests) =="
    )

    backends: dict[str, dict] = {}
    baseline_print = None
    baseline_wall = None
    for backend, skip_reason in backend_names_for(config, network, all_backends):
        if skip_reason is not None:
            print(f"  {backend:>10}: skipped ({skip_reason})")
            backends[backend] = {"skipped": skip_reason}
            continue
        built = time.perf_counter()
        oracle = DistanceOracle(network, backend=backend)
        build_seconds = time.perf_counter() - built
        throughput = query_throughput(oracle, network)
        walls = []
        result = counters = None
        for _ in range(repeats):
            oracle.clear_caches()
            wall, result, counters = simulate(config, network, canonical, oracle)
            walls.append(wall)
        best = min(walls)
        entry = {
            "build_s": round(build_seconds, 4),
            "queries_per_s": round(throughput, 1),
            "wall_s": round(best, 4),
            "metrics": fingerprint(result),
            "distance_queries": counters["distance_queries"],
            "dijkstra_runs": counters["dijkstra_runs"],
            "distance_cache_hit_rate": counters.get("distance_cache_hit_rate"),
        }
        if backend == "dijkstra":
            baseline_print = entry["metrics"]
            baseline_wall = best
        entry["speedup"] = round(baseline_wall / best, 3) if baseline_wall else None
        entry["identical_metrics"] = (
            entry["metrics"] == baseline_print if baseline_print is not None else None
        )
        backends[backend] = entry
        print(
            f"  {backend:>10}: build {entry['build_s']:7.2f}s  "
            f"{entry['queries_per_s']:>12,.0f} q/s  run {best:6.2f}s  "
            f"{entry['speedup']:5.2f}x  served {entry['metrics']['served']}  "
            f"identical={entry['identical_metrics']}"
        )

    ran = [b for b in backends.values() if "skipped" not in b]
    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scenario": name,
        "city": config.city,
        "vertices": network.num_vertices,
        "workers": config.num_workers,
        "requests": config.num_requests,
        "repeats": repeats,
        "backends": backends,
        "best_speedup": max((b["speedup"] or 0.0) for b in ran),
        "identical_metrics": all(b["identical_metrics"] for b in ran),
        "python": platform.python_version(),
    }
    print(
        f"  [{name}] best speedup {entry['best_speedup']:.2f}x vs the Dijkstra fallback; "
        f"metrics identical: {entry['identical_metrics']}"
    )
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS) + ["all", "default"],
        default="default",
        help="named scenario ('default' runs standard + nyc-like, 'all' every one)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="override the fleet size"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="simulation runs per backend (best-of)"
    )
    parser.add_argument(
        "--all-backends", action="store_true",
        help="run every backend even where the policy would skip it",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_oracle.json",
        help="perf-trajectory JSON file to append to",
    )
    args = parser.parse_args(argv)

    if args.scenario == "all":
        names = sorted(SCENARIOS)
    elif args.scenario == "default":
        names = ["standard", "nyc-like"]
    else:
        names = [args.scenario]
    entries = [
        bench_scenario(name, args.workers, args.repeats, args.all_backends)
        for name in names
    ]
    append_trajectory(args.output, "oracle", entries)

    if not all(entry["identical_metrics"] for entry in entries):
        print("FAIL: a backend's simulation metrics diverge from the Dijkstra baseline")
        return 1
    for entry in entries:
        print(f"{entry['scenario']}: best {entry['best_speedup']}x over the Dijkstra fallback")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
