"""End-to-end benchmark of the sharded dispatch subsystem (PR 3's tentpole).

Runs pruneGreedyDP unsharded as the baseline, then wrapped in the
:class:`~repro.sharding.dispatcher.ShardedDispatcher` at K ∈ {1, 2, 4, 8},
on the same instance. For every K the script records

* wall-clock (best of ``--repeats``) and the speedup over the baseline;
* served rate / unified cost and their deltas vs the baseline (the quality
  price of dispatching locally instead of globally);
* the sharding counters (local hits, escalations, cross-shard assignments)
  and the merged per-shard oracle totals.

**Gate:** K=1 must reproduce the unsharded baseline exactly — same served
requests, unified cost and distance-query counter. The sharded wrapper is
only allowed to trade quality for locality when K > 1; at K=1 any deviation
is a bug, and the script exits non-zero (CI runs the smoke scenario).

The script appends one entry per scenario to ``BENCH_sharding.json`` so
successive PRs can track the scaling trajectory.

Usage::

    python benchmarks/bench_sharding.py                   # standard @ 300 workers
    python benchmarks/bench_sharding.py --scenario smoke  # CI-sized, <1 min
    python benchmarks/bench_sharding.py --strategy kd --shards 1 2 4
"""

from __future__ import annotations

import argparse
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from _trajectory import append_trajectory  # noqa: E402
from repro.dispatch import DispatcherConfig, make_dispatcher  # noqa: E402
from repro.workloads.scenarios import (  # noqa: E402
    ScenarioConfig,
    build_instance,
    build_network,
    make_oracle,
    paper_default_scenario,
)
from repro.simulation.simulator import Simulator  # noqa: E402

#: named benchmark scenarios; "standard" is the paper-default city at the
#: fleet size where candidate sets get large, "smoke" fits a CI minute.
SCENARIOS = {
    "standard": lambda workers: paper_default_scenario(num_workers=workers or 300),
    "nyc": lambda workers: ScenarioConfig(
        city="nyc-like", num_workers=workers or 300, num_requests=600, seed=2018
    ),
    "smoke": lambda workers: ScenarioConfig(
        city="small-grid", num_workers=workers or 30, num_requests=150, seed=2018
    ),
}


def run_once(config, network, shards: int, strategy: str):
    """One full simulation; returns (wall seconds, result)."""
    oracle = make_oracle(network, config)
    instance = build_instance(config, network=network, oracle=oracle)
    dispatcher_config = DispatcherConfig(
        grid_cell_metres=config.grid_km * 1000.0,
        num_shards=max(shards, 1),
        shard_strategy=strategy,
    )
    name = "pruneGreedyDP" if shards == 0 else "sharded:pruneGreedyDP"
    dispatcher = make_dispatcher(name, dispatcher_config)
    simulator = Simulator(instance, dispatcher)
    started = time.perf_counter()
    result = simulator.run()
    wall = time.perf_counter() - started
    return wall, result


def fingerprint(result) -> dict:
    """The metrics K=1 must agree on with the unsharded baseline."""
    return {
        "served": result.served_requests,
        "served_rate": result.served_rate,
        "unified_cost": result.unified_cost,
        "distance_queries": result.distance_queries,
    }


def bench_scenario(
    name: str, workers: int | None, repeats: int, shard_counts: list[int], strategy: str
) -> dict:
    config = SCENARIOS[name](workers)
    network = build_network(config)

    def best_of(shards: int):
        walls, last_result = [], None
        for repeat in range(repeats):
            wall, last_result = run_once(config, network, shards, strategy)
            walls.append(wall)
            label = "unsharded" if shards == 0 else f"K={shards}"
            print(
                f"  [{name}] repeat {repeat + 1}/{repeats} {label:>9}: {wall:6.2f}s  "
                f"served {last_result.served_requests}/{last_result.total_requests}"
            )
        return min(walls), last_result

    baseline_wall, baseline = best_of(0)
    baseline_print = fingerprint(baseline)

    sweep_entries = []
    k1_identical = True
    for shards in shard_counts:
        wall, result = best_of(shards)
        result_print = fingerprint(result)
        identical = result_print == baseline_print
        if shards == 1:
            k1_identical = k1_identical and identical
        sweep_entries.append(
            {
                "shards": shards,
                "wall_s": round(wall, 4),
                "speedup": round(baseline_wall / wall, 3) if wall > 0 else float("inf"),
                "served_rate": result.served_rate,
                "served_rate_delta": result.served_rate - baseline.served_rate,
                "unified_cost": result.unified_cost,
                "unified_cost_delta": result.unified_cost - baseline.unified_cost,
                "distance_queries": result.distance_queries,
                "identical_to_baseline": identical,
                "local_hits": result.extra.get("sharding_local_hits"),
                "escalations": result.extra.get("sharding_escalations"),
                "cross_shard_assignments": result.extra.get(
                    "sharding_cross_shard_assignments"
                ),
                "boundary_vertices": result.extra.get("sharding_boundary_vertices"),
            }
        )
        print(
            f"  [{name}] K={shards}: {wall:.2f}s ({baseline_wall / wall:.2f}x), "
            f"served_rate {result.served_rate:.4f} "
            f"({result.served_rate - baseline.served_rate:+.4f}), "
            f"identical: {identical}"
        )

    return {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scenario": name,
        "city": config.city,
        "workers": config.num_workers,
        "requests": config.num_requests,
        "repeats": repeats,
        "strategy": strategy,
        "baseline_wall_s": round(baseline_wall, 4),
        "baseline": baseline_print,
        "sweep": sweep_entries,
        "k1_identical": k1_identical,
        "python": platform.python_version(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS) + ["all"],
        default="standard",
        help="named scenario to run (default: standard; 'all' runs every one)",
    )
    parser.add_argument("--workers", type=int, default=None, help="override the fleet size")
    parser.add_argument(
        "--repeats", type=int, default=3, help="runs per configuration (best-of)"
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4, 8], help="shard counts to sweep"
    )
    parser.add_argument(
        "--strategy", default="grid", choices=["grid", "kd"], help="partitioning strategy"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_sharding.json",
        help="perf-trajectory JSON file to append to",
    )
    args = parser.parse_args(argv)

    names = sorted(SCENARIOS) if args.scenario == "all" else [args.scenario]
    entries = []
    for name in names:
        print(f"== sharding benchmark: {name} ==")
        entries.append(
            bench_scenario(name, args.workers, args.repeats, args.shards, args.strategy)
        )
    append_trajectory(args.output, "sharding", entries)

    if not all(entry["k1_identical"] for entry in entries):
        print("FAIL: sharded K=1 metrics diverge from the unsharded baseline")
        return 1
    for entry in entries:
        summary = ", ".join(
            f"K={point['shards']}: {point['speedup']}x" for point in entry["sweep"]
        )
        print(f"{entry['scenario']}: baseline {entry['baseline_wall_s']}s; {summary}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
