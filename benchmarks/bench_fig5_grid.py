"""Figure 5 reproduction: performance while varying the grid-index cell size g.

Paper findings (Section 6.2, "Impact of Grid Size"): effectiveness is largely
insensitive to the grid size; pruneGreedyDP keeps the lowest unified cost and
the highest served rate; tshare's grid index consumes far more memory than the
other algorithms' (it stores per-cell sorted lists of all other cells), which
we report alongside the three standard metrics.
"""

from __future__ import annotations

from repro.experiments.figures import figure5_grid_size
from repro.experiments.reporting import format_figure

from benchmarks.conftest import bench_experiment, emit, run_figure_once


def test_figure5_vary_grid_size(benchmark, shared_runner):
    experiment = bench_experiment()
    figure = run_figure_once(benchmark, figure5_grid_size, experiment, shared_runner)
    emit(format_figure(figure))

    for city in figure.cities():
        # grid-index memory: tshare's sorted-cell lists dominate the plain grid
        tshare_memory = dict(figure.series(city, "tshare", "index_memory_bytes"))
        prune_memory = dict(figure.series(city, "pruneGreedyDP", "index_memory_bytes"))
        for grid_km in tshare_memory:
            assert tshare_memory[grid_km] > prune_memory[grid_km]

        # finer grids mean more cells and therefore more tshare memory
        grids = sorted(tshare_memory)
        assert tshare_memory[grids[0]] >= tshare_memory[grids[-1]]

        # effectiveness is stable across grid sizes for pruneGreedyDP
        cost = [value for _, value in figure.series(city, "pruneGreedyDP", "unified_cost")]
        assert max(cost) <= min(cost) * 1.15
