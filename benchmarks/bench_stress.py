#!/usr/bin/env python3
"""Stress benchmark: seeded scenario fuzzer swept against the dispatcher registry.

Generates spawn-key-derived random scenario programs (heterogeneous fleets,
demand surges, street closures, multi-class workloads, cancellations) and
replays each one through every registry dispatcher plus the ``sharded:`` and
``cluster:`` serving paths, gating the robustness guarantees:

* **zero crashes** — no (scenario, dispatcher) combination may raise;
* **rerun determinism** — every combination is replayed and must produce a
  bit-identical metrics fingerprint (counts, costs, waits, detours, oracle
  query counters);
* **zero invariant violations** — no negative waits, no dropoff before
  pickup, no capacity overflow, and no deadline breach on disruption-free
  scenarios;
* served-rate **cliffs** (a dispatcher falling far below the best on the same
  scenario) are recorded in the trajectory but do not fail the build.

Any gate failure exits non-zero. Every sweep lands in the perf trajectory
(``BENCH_stress.json`` by default) with per-dispatcher served-rate summaries
and wall time.

Usage::

    python benchmarks/bench_stress.py                # full sweep (30 scenarios)
    python benchmarks/bench_stress.py --smoke        # CI preset (6 scenarios)
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from _trajectory import append_trajectory  # noqa: E402
from repro.scenarios import default_stress_dispatchers, run_stress  # noqa: E402

SMOKE_SCENARIOS = 6
FULL_SCENARIOS = 30


def _dispatcher_summary(runs: list[dict]) -> dict[str, dict]:
    """Mean served rate and crash count per dispatcher across the sweep."""
    summary: dict[str, dict] = {}
    for run in runs:
        stats = summary.setdefault(
            run["dispatcher"], {"runs": 0, "crashes": 0, "served_rate_sum": 0.0}
        )
        stats["runs"] += 1
        if run.get("crashed"):
            stats["crashes"] += 1
        else:
            stats["served_rate_sum"] += run["served_rate"]
    for stats in summary.values():
        clean = stats["runs"] - stats["crashes"]
        stats["mean_served_rate"] = (
            round(stats["served_rate_sum"] / clean, 6) if clean else None
        )
        del stats["served_rate_sum"]
    return summary


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI preset: {SMOKE_SCENARIOS} scenarios instead of {FULL_SCENARIOS}",
    )
    parser.add_argument(
        "--scenarios", type=int, default=None,
        help="override the number of generated scenarios",
    )
    parser.add_argument("--seed", type=int, default=2018, help="sweep master seed")
    parser.add_argument(
        "--reruns", type=int, default=1,
        help="extra reruns per combination for the determinism gate",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_stress.json",
        help="perf-trajectory JSON file to append to",
    )
    args = parser.parse_args(argv)

    num_scenarios = args.scenarios or (SMOKE_SCENARIOS if args.smoke else FULL_SCENARIOS)
    dispatchers = default_stress_dispatchers()
    print(
        f"== stress sweep: {num_scenarios} scenarios x {len(dispatchers)} dispatchers "
        f"(seed {args.seed}, {args.reruns} rerun(s)) =="
    )

    started = time.perf_counter()
    report = run_stress(
        num_scenarios,
        dispatchers,
        master_seed=args.seed,
        reruns=args.reruns,
        progress=lambda line: print(f"  {line}"),
    )
    wall = round(time.perf_counter() - started, 2)

    summary = _dispatcher_summary(report.runs)
    print(f"\n{len(report.runs)} runs in {wall}s")
    for name in sorted(summary):
        stats = summary[name]
        print(
            f"  {name:28s} mean served rate {stats['mean_served_rate']}"
            f"  crashes {stats['crashes']}"
        )
    print(
        f"gates: {len(report.crashes)} crashes, "
        f"{len(report.nondeterministic)} non-deterministic, "
        f"{len(report.violations)} invariant violations, "
        f"{len(report.cliffs)} served-rate cliffs (informational)"
    )

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "smoke": args.smoke,
        "wall_s": wall,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "dispatcher_summary": summary,
        **report.to_dict(),
    }
    # the full per-run list is large; the trajectory keeps the gate evidence
    entry.pop("runs")
    append_trajectory(args.output, "stress", [entry])

    if not report.ok:
        for crash in report.crashes:
            print(f"FAIL crash: scenario {crash['scenario']} x {crash['dispatcher']}: "
                  f"{crash['error']}")
        for record in report.nondeterministic:
            print(f"FAIL non-deterministic: scenario {record['scenario']} x "
                  f"{record['dispatcher']}")
        for violation in report.violations:
            print(f"FAIL invariant: scenario {violation['scenario']} x "
                  f"{violation['dispatcher']}: {violation['kind']}")
        return 1
    print("all stress gates pass")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
