"""Figure 7 reproduction: performance while varying the penalty factor p_r.

Paper findings (Section 6.2, "Impact of Penalty"): the unified cost of every
algorithm grows with the penalty factor (unserved requests cost more), with
pruneGreedyDP staying the smallest — i.e. it remains competitive when the
objective leans towards revenue maximisation with varying c_r / c_w ratios.
"""

from __future__ import annotations

from repro.experiments.figures import figure7_penalty
from repro.experiments.reporting import format_figure

from benchmarks.conftest import bench_experiment, emit, run_figure_once


def test_figure7_vary_penalty(benchmark, shared_runner):
    experiment = bench_experiment()
    figure = run_figure_once(benchmark, figure7_penalty, experiment, shared_runner)
    emit(format_figure(figure))

    for city in figure.cities():
        cost = dict(figure.series(city, "pruneGreedyDP", "unified_cost"))
        factors = sorted(cost)
        # a higher penalty factor can only increase the unified cost
        assert cost[factors[-1]] >= cost[factors[0]]

        # pruneGreedyDP stays no worse than tshare at the largest penalty
        tshare_cost = dict(figure.series(city, "tshare", "unified_cost"))
        assert cost[factors[-1]] <= tshare_cost[factors[-1]] * 1.01
