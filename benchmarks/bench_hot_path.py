"""End-to-end benchmark of the array-native hot path (PR 2's tentpole).

Runs pruneGreedyDP twice on the same instance:

* **legacy** — a reconstruction of the pre-PR scalar hot path: scalar
  per-candidate decision phase, lazily-queried linear DP (no batch prefetch),
  per-touch fleet materialisation without the no-op fast path, the seed's
  list-building ``Route.refresh``, and the seed's dict-of-dict bidirectional
  Dijkstra for shortest-path misses;
* **array-native** — the CSR + batched-oracle + vectorized-decision pipeline
  that is the library default.

Both runs must agree **exactly** on served requests, unified cost,
``distance_queries`` and ``dijkstra_runs`` — the speedup is never allowed to
buy a behaviour change. Note the fleet-advancement fast paths (concrete-path
suffix reuse, shift-by-one auxiliary arrays on stop completion) are shared by
*both* configurations: they eliminate redundant oracle work outright, and
gating them per-arm would make the counter-identity assertion impossible.
The legacy arm therefore reconstructs the pre-PR **decision/oracle/refresh/
materialisation** costs (empirically within a few percent of the true pre-PR
wall on the standard scenario), while the advancement savings are counted for
both sides — the reported speedup is conservative in that respect.

The script appends one entry per scenario to a ``BENCH_hot_path.json``
perf-trajectory file so successive PRs can track the hot path over time.

Usage::

    python benchmarks/bench_hot_path.py                  # standard @ 300 workers
    python benchmarks/bench_hot_path.py --scenario smoke # CI-sized, <30 s
    python benchmarks/bench_hot_path.py --repeats 5 --output BENCH_hot_path.json
"""

from __future__ import annotations

import argparse
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from _trajectory import append_trajectory  # noqa: E402
from repro.core.insertion.linear_dp import LinearDPInsertion  # noqa: E402
from repro.core.route import Route  # noqa: E402
from repro.dispatch import DispatcherConfig  # noqa: E402
from repro.dispatch.greedy_dp import PruneGreedyDP  # noqa: E402
from repro.simulation.simulator import Simulator  # noqa: E402
from repro.workloads.scenarios import (  # noqa: E402
    ScenarioConfig,
    build_instance,
    build_network,
    make_oracle,
    paper_default_scenario,
)

#: named benchmark scenarios; "standard" is the paper-default city at the
#: worker count the issue targets, "smoke" fits a CI minute.
SCENARIOS = {
    "standard": lambda workers: paper_default_scenario(num_workers=workers or 300),
    "nyc": lambda workers: ScenarioConfig(
        city="nyc-like", num_workers=workers or 300, num_requests=600, seed=2018
    ),
    "smoke": lambda workers: ScenarioConfig(
        city="small-grid", num_workers=workers or 30, num_requests=150, seed=2018
    ),
}


def run_config(config, network, legacy: bool):
    """One full simulation; returns (wall seconds, result, counter snapshot)."""
    oracle = make_oracle(network, config)
    oracle.legacy_reference_mode = legacy
    instance = build_instance(config, network=network, oracle=oracle)
    dispatcher = PruneGreedyDP(
        DispatcherConfig(grid_cell_metres=config.grid_km * 1000.0),
        insertion=LinearDPInsertion(prefetch=not legacy),
        vectorized=not legacy,
    )
    simulator = Simulator(instance, dispatcher)
    simulator.fleet.materialise_fast_path = not legacy
    Route.legacy_refresh = legacy
    try:
        started = time.perf_counter()
        result = simulator.run()
        wall = time.perf_counter() - started
    finally:
        Route.legacy_refresh = False
    return wall, result, oracle.counters.snapshot()


def fingerprint(result, counters) -> dict:
    """The metrics both configurations must agree on exactly."""
    return {
        "served": result.served_requests,
        "served_rate": result.served_rate,
        "unified_cost": result.unified_cost,
        "distance_queries": counters["distance_queries"],
        "dijkstra_runs": counters["dijkstra_runs"],
    }


def bench_scenario(name: str, workers: int | None, repeats: int) -> dict:
    config = SCENARIOS[name](workers)
    network = build_network(config)
    walls = {"legacy": [], "array_native": []}
    outcomes = {}
    for repeat in range(repeats):
        for label, legacy in (("legacy", True), ("array_native", False)):
            wall, result, counters = run_config(config, network, legacy)
            walls[label].append(wall)
            outcomes[label] = (result, counters)
            print(
                f"  [{name}] repeat {repeat + 1}/{repeats} {label:>12}: "
                f"{wall:6.2f}s  served {result.served_requests}/{result.total_requests}"
            )

    legacy_print = fingerprint(*outcomes["legacy"])
    array_print = fingerprint(*outcomes["array_native"])
    identical = legacy_print == array_print
    best_legacy = min(walls["legacy"])
    best_array = min(walls["array_native"])
    speedup = best_legacy / best_array if best_array > 0 else float("inf")
    _, array_counters = outcomes["array_native"]

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scenario": name,
        "city": config.city,
        "workers": config.num_workers,
        "requests": config.num_requests,
        "repeats": repeats,
        "legacy_wall_s": round(best_legacy, 4),
        "array_native_wall_s": round(best_array, 4),
        "speedup": round(speedup, 3),
        "identical_metrics": identical,
        "metrics": array_print,
        "distance_cache_hit_rate": array_counters.get("distance_cache_hit_rate"),
        "path_cache_hit_rate": array_counters.get("path_cache_hit_rate"),
        "python": platform.python_version(),
    }

    print(
        f"  [{name}] best-of-{repeats}: legacy {best_legacy:.2f}s, "
        f"array-native {best_array:.2f}s -> {speedup:.2f}x speedup; "
        f"metrics identical: {identical}"
    )
    if not identical:
        print(f"    legacy:       {legacy_print}")
        print(f"    array-native: {array_print}")
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS) + ["all"],
        default="standard",
        help="named scenario to run (default: standard; 'all' runs every one)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="override the fleet size"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="runs per configuration (best-of)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_hot_path.json",
        help="perf-trajectory JSON file to append to",
    )
    args = parser.parse_args(argv)

    names = sorted(SCENARIOS) if args.scenario == "all" else [args.scenario]
    entries = []
    for name in names:
        print(f"== hot-path benchmark: {name} ==")
        entries.append(bench_scenario(name, args.workers, args.repeats))
    append_trajectory(args.output, "hot_path", entries)

    if not all(entry["identical_metrics"] for entry in entries):
        print("FAIL: array-native metrics diverge from the legacy scalar path")
        return 1
    for entry in entries:
        print(
            f"{entry['scenario']}: {entry['speedup']}x "
            f"({entry['legacy_wall_s']}s -> {entry['array_native_wall_s']}s)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
