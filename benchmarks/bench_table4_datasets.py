"""Table 4 and Table 5 reproduction: dataset statistics and parameter settings.

Table 4 of the paper lists #requests, #vertices and #edges of the NYC and
Chengdu datasets. The synthetic stand-ins are far smaller (see DESIGN.md for
the substitution rationale) but keep the two-city structure: the NYC-like grid
is several times larger than the Chengdu-like ring-radial city. Table 5 lists
the swept parameters; we print the paper's values next to the scaled values the
benchmarks actually use.
"""

from __future__ import annotations

from repro.experiments.tables import table4_datasets, table5_parameters
from repro.workloads.scenarios import ScenarioConfig, build_network

from benchmarks.conftest import bench_experiment, emit
from repro.experiments.reporting import format_table


def test_table4_dataset_statistics(benchmark):
    """Build both synthetic cities and report the Table 4 statistics."""
    experiment = bench_experiment()

    def _build():
        return table4_datasets(experiment)

    rows = benchmark.pedantic(_build, rounds=1, iterations=1)
    emit("Table 4 — dataset statistics (synthetic stand-ins)\n" + format_table(rows))
    by_city = {row["dataset"]: row for row in rows}
    assert by_city["nyc-like"]["vertices"] > by_city["chengdu-like"]["vertices"]
    assert by_city["nyc-like"]["requests"] > by_city["chengdu-like"]["requests"]


def test_table5_parameter_settings(benchmark):
    """Report the Table 5 parameter grid (paper values vs. scaled values)."""
    experiment = bench_experiment()
    rows = benchmark.pedantic(lambda: table5_parameters(experiment), rounds=1, iterations=1)
    emit("Table 5 — parameter settings\n" + format_table(rows))
    assert any("grid size" in str(row["parameter"]) for row in rows)


def test_network_construction_nyc_like(benchmark):
    """Time the construction of the larger (NYC-like) synthetic road network."""
    benchmark.group = "network construction"
    network = benchmark(build_network, ScenarioConfig(city="nyc-like"))
    assert network.num_vertices > 1000


def test_network_construction_chengdu_like(benchmark):
    """Time the construction of the smaller (Chengdu-like) synthetic road network."""
    benchmark.group = "network construction"
    network = benchmark(build_network, ScenarioConfig(city="chengdu-like"))
    assert network.num_vertices > 100
