"""Ablation benchmark: insertion operators (Section 4).

The paper's complexity claims are O(n^3) for basic insertion, O(n^2) for the
naive DP insertion and O(n) for the linear DP insertion. This benchmark times
one best-insertion call of each operator on routes of growing length ``n`` so
the scaling (and the crossover in absolute time) is visible in the
pytest-benchmark table.
"""

from __future__ import annotations

import pytest

from repro.core.insertion.basic import BasicInsertion
from repro.core.insertion.linear_dp import LinearDPInsertion
from repro.core.insertion.naive_dp import NaiveDPInsertion
from repro.core.route import empty_route
from repro.core.types import Request, Worker
from repro.network.generators import grid_city
from repro.network.oracle import DistanceOracle

_NETWORK = grid_city(rows=14, columns=14, block_metres=220.0, removed_block_fraction=0.02, seed=17)
_ORACLE = DistanceOracle(_NETWORK, precompute="apsp")
_VERTICES = sorted(_NETWORK.vertices())

OPERATORS = {
    "basic": BasicInsertion(),
    "naive-dp": NaiveDPInsertion(),
    "linear-dp": LinearDPInsertion(),
}

ROUTE_LENGTHS = [4, 8, 16, 32]


def _build_route_with_stops(num_requests: int):
    """A long feasible route built by appending generously-deadlined requests."""
    worker = Worker(id=0, initial_location=_VERTICES[0], capacity=10_000)
    route = empty_route(worker, start_time=0.0)
    route.refresh(_ORACLE)
    for index in range(num_requests):
        origin = _VERTICES[(7 * index + 3) % len(_VERTICES)]
        destination = _VERTICES[(13 * index + 29) % len(_VERTICES)]
        if destination == origin:
            destination = _VERTICES[(13 * index + 30) % len(_VERTICES)]
        request = Request(
            id=index,
            origin=origin,
            destination=destination,
            release_time=0.0,
            deadline=1e9,
            penalty=1.0,
        )
        route = route.with_insertion(request, route.num_stops, route.num_stops, _ORACLE)
    return route


_NEW_REQUEST = Request(
    id=10_000,
    origin=_VERTICES[len(_VERTICES) // 2],
    destination=_VERTICES[len(_VERTICES) // 3],
    release_time=0.0,
    deadline=1e9,
    penalty=1.0,
)


@pytest.mark.parametrize("num_requests", ROUTE_LENGTHS)
@pytest.mark.parametrize("operator_name", list(OPERATORS))
def test_insertion_operator_scaling(benchmark, operator_name, num_requests):
    """Time one best-insertion call; group rows by route length."""
    operator = OPERATORS[operator_name]
    route = _build_route_with_stops(num_requests)
    benchmark.group = f"insertion n={2 * num_requests}"
    result = benchmark(operator.best_insertion, route, _NEW_REQUEST, _ORACLE)
    assert result.feasible


@pytest.mark.parametrize("operator_name", ["naive-dp", "linear-dp"])
def test_dp_operators_match_basic_reference(benchmark, operator_name):
    """Sanity inside the benchmark: identical Δ* across operators (n = 16 stops)."""
    route = _build_route_with_stops(8)
    reference = OPERATORS["basic"].best_insertion(route, _NEW_REQUEST, _ORACLE)
    operator = OPERATORS[operator_name]
    benchmark.group = "insertion equivalence"
    result = benchmark(operator.best_insertion, route, _NEW_REQUEST, _ORACLE)
    assert result.delta == pytest.approx(reference.delta, abs=1e-6)
