"""Figure 6 reproduction: performance while varying the delivery deadline e_r.

Paper findings (Section 6.2, "Impact of Deadline"): longer deadlines lower the
unified cost and raise the served rate for every algorithm; pruneGreedyDP stays
the most effective; the pruning strategy saves more shortest-distance queries
as the deadline grows (more candidate workers per request), keeping
pruneGreedyDP's response time flat where GreedyDP's grows.
"""

from __future__ import annotations

from repro.experiments.figures import figure6_deadline
from repro.experiments.reporting import format_figure

from benchmarks.conftest import bench_experiment, emit, run_figure_once


def test_figure6_vary_deadline(benchmark, shared_runner):
    experiment = bench_experiment()
    figure = run_figure_once(benchmark, figure6_deadline, experiment, shared_runner)
    emit(format_figure(figure))

    for city in figure.cities():
        served = dict(figure.series(city, "pruneGreedyDP", "served_rate"))
        cost = dict(figure.series(city, "pruneGreedyDP", "unified_cost"))
        deadlines = sorted(served)
        # longer deadlines -> more served requests and lower unified cost
        assert served[deadlines[-1]] >= served[deadlines[0]]
        assert cost[deadlines[-1]] <= cost[deadlines[0]]

        # Lemma 8 pruning saves exact queries versus GreedyDP at the longest deadline
        prune_queries = dict(figure.series(city, "pruneGreedyDP", "distance_queries"))
        plain_queries = dict(figure.series(city, "GreedyDP", "distance_queries"))
        assert prune_queries[deadlines[-1]] <= plain_queries[deadlines[-1]]
