"""Chaos benchmark: seeded fault injection against the shard-worker cluster.

Replays the chaos scenario (K=4, both ``pruneGreedyDP`` and ``batch``)
through :class:`ClusterMatchingService` under deterministic fault plans from
``tests/cluster/chaos.py`` and gates the self-healing guarantees:

* **between-windows bit-identity** — a worker killed between batch windows
  (and between commands for the immediate dispatcher) must leave the replay
  bit-identical to the fault-free run: served/rejected counts, unified cost,
  mean wait and mean detour all compare exact;
* **mid-window completion** — a worker killed mid-round-trip (command sent,
  reply lost) must still finish the replay with every request decided
  exactly once, no hang and no unhandled exception; the served-rate delta
  against the fault-free run is recorded (the exactly-once design makes it
  0.0, and that too is gated);
* **rerun determinism** — the same seeded fault plan twice produces the
  same fingerprint, the same fired-fault trace and the same recovery
  counters.

Any gate failure exits non-zero. Every entry lands in the perf trajectory
(``BENCH_chaos.json`` by default) with the recovery telemetry
(failures / restarts / retries / degraded dispatches) per run.

With ``--disruptions`` the matrix switches to **live network updates**: a
deterministic timed close→reopen plan (``closure_plan``) runs through the
cluster session, and workers are killed anchored *before*, *during* and
*after* an update window, plus killed early with a restart delay that lands
the respawn adoption between the closure and the reopening (forcing a
journal replay of the missed mutation). Every faulted run must stay
bit-identical to the fault-free run with the same plan, leave no orphan
process, and the replay gate must observe an ``update_replayed`` recovery
event.

Usage::

    python benchmarks/bench_chaos.py                  # full gate matrix
    python benchmarks/bench_chaos.py --smoke          # CI preset (same
                                                      # scenario, kill gates
                                                      # only)
    python benchmarks/bench_chaos.py --disruptions    # live-update gates
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
sys.path.insert(0, str(REPO_ROOT))

from _trajectory import append_trajectory  # noqa: E402
from tests.cluster.chaos import (  # noqa: E402
    DEFAULT_SCENARIO,
    DEFAULT_SHARDS,
    Fault,
    closure_plan,
    run_chaos,
    seeded_faults,
)

ALGORITHMS = ("pruneGreedyDP", "batch")

#: per-algorithm extra kwargs for :func:`run_chaos`
_RUN_KWARGS = {"pruneGreedyDP": {}, "batch": {"batch_interval": 30.0}}


def _run(algorithm: str, faults=(), **overrides):
    kwargs = dict(_RUN_KWARGS[algorithm])
    kwargs.update(overrides)
    started = time.perf_counter()
    chaos = run_chaos(algorithm, faults, **kwargs)
    wall = time.perf_counter() - started
    return chaos, round(wall, 4)


def _telemetry(chaos) -> dict:
    return {
        "worker_failures": chaos.worker_failures,
        "worker_restarts": chaos.worker_restarts,
        "retries": chaos.retries,
        "degraded_dispatches": chaos.degraded_dispatches,
        "shard_health": list(chaos.shard_health),
        "faults_fired": len(chaos.fired),
        "network_updates": chaos.network_updates,
        "update_ack_retries": chaos.update_ack_retries,
        "replica_rebuilds": list(chaos.replica_rebuilds),
    }


def bench_algorithm(algorithm: str, smoke: bool) -> tuple[dict, list[str]]:
    """Run every gate for one algorithm; returns (entry, failure messages)."""
    failures: list[str] = []
    baseline, baseline_wall = _run(algorithm)
    print(
        f"  [{algorithm}] fault-free: served {baseline.result.served_requests}"
        f"/{baseline.result.total_requests} in {baseline_wall}s"
    )

    gates = {}

    # gate 1: kill between windows/commands -> bit-identical
    between = [Fault("kill", shard=0, at_command=1, phase="before_send")]
    chaos, wall = _run(algorithm, between)
    identical = chaos.fingerprint == baseline.fingerprint
    if not chaos.fired:
        failures.append(f"{algorithm}: between-windows kill never fired")
    if not identical:
        failures.append(
            f"{algorithm}: between-windows kill diverged: "
            f"{chaos.fingerprint} != {baseline.fingerprint}"
        )
    if chaos.orphans:
        failures.append(f"{algorithm}: between-windows kill left orphan processes")
    gates["kill_between_windows"] = {
        "wall_s": wall,
        "bit_identical": identical,
        **_telemetry(chaos),
    }
    print(f"  [{algorithm}] kill between windows: bit-identical={identical}")

    # gate 2: kill mid-round-trip -> completes, exactly-once, served-rate delta
    mid = [
        Fault("delay", shard=0, at_command=1, seconds=0.5),
        Fault("kill", shard=0, at_command=1, phase="after_send"),
    ]
    chaos, wall = _run(algorithm, mid)
    total = DEFAULT_SCENARIO.num_requests
    complete = (
        chaos.result.total_requests == total
        and chaos.result.served_requests + chaos.result.rejected_requests == total
    )
    if not complete:
        failures.append(
            f"{algorithm}: mid-window kill lost requests "
            f"({chaos.result.served_requests}+{chaos.result.rejected_requests}"
            f" of {total})"
        )
    served_rate_delta = round(
        chaos.result.served_rate - baseline.result.served_rate, 12
    )
    if chaos.fingerprint != baseline.fingerprint:
        failures.append(f"{algorithm}: mid-window kill diverged from fault-free run")
    gates["kill_mid_window"] = {
        "wall_s": wall,
        "complete": complete,
        "served_rate_delta": served_rate_delta,
        "bit_identical": chaos.fingerprint == baseline.fingerprint,
        **_telemetry(chaos),
    }
    print(
        f"  [{algorithm}] kill mid-window: complete={complete} "
        f"served-rate delta={served_rate_delta}"
    )

    if not smoke:
        # gate 3: seeded random fault plan, run twice -> deterministic
        faults = seeded_faults(DEFAULT_SCENARIO.seed, num_shards=DEFAULT_SHARDS)
        first, wall_first = _run(algorithm, faults)
        second, wall_second = _run(algorithm, faults)
        deterministic = (
            first.fingerprint == second.fingerprint
            and first.fired == second.fired
            and first.worker_failures == second.worker_failures
        )
        if not deterministic:
            failures.append(f"{algorithm}: seeded chaos rerun was not deterministic")
        gates["seeded_plan_rerun"] = {
            "wall_s": round(wall_first + wall_second, 4),
            "deterministic": deterministic,
            "plan": [
                {"kind": f.kind, "shard": f.shard, "at_command": f.at_command}
                for f in faults
            ],
            **_telemetry(first),
        }
        print(f"  [{algorithm}] seeded plan rerun: deterministic={deterministic}")

        # gate 4: transient faults retry without killing anyone
        chaos, wall = _run(
            algorithm,
            [Fault("transient_send", shard=0, at_command=1, count=2)],
            retry_attempts=3,
        )
        survived = chaos.worker_failures == 0 and chaos.retries >= 2
        identical = chaos.fingerprint == baseline.fingerprint
        if not (survived and identical):
            failures.append(f"{algorithm}: transient retry gate failed")
        gates["transient_retry"] = {
            "wall_s": wall,
            "survived": survived,
            "bit_identical": identical,
            **_telemetry(chaos),
        }
        print(f"  [{algorithm}] transient retry: survived={survived}")

    return {
        "algorithm": algorithm,
        "baseline": {
            "wall_s": baseline_wall,
            "served_rate": round(baseline.result.served_rate, 6),
            "fingerprint": baseline.fingerprint,
        },
        "gates": gates,
    }, failures


def bench_update_windows(algorithm: str, plan) -> tuple[dict, list[str]]:
    """Live network updates: kills anchored to update windows + journal replay."""
    failures: list[str] = []
    baseline, baseline_wall = _run(algorithm, updates=plan)
    if baseline.network_updates != len(plan):
        failures.append(
            f"{algorithm}: fault-free run applied {baseline.network_updates} "
            f"updates, plan had {len(plan)}"
        )
    print(
        f"  [{algorithm}] fault-free with {len(plan)} updates: served "
        f"{baseline.result.served_requests}/{baseline.result.total_requests} "
        f"in {baseline_wall}s"
    )

    gates = {}

    # gate 1: kill before / during / after the first update window
    for window in ("before", "during", "after"):
        chaos, wall = _run(
            algorithm,
            [Fault("kill", shard=1, at_update=0, window=window)],
            updates=plan,
        )
        identical = chaos.fingerprint == baseline.fingerprint
        if not chaos.fired:
            failures.append(f"{algorithm}: kill {window} update never fired")
        if not identical:
            failures.append(
                f"{algorithm}: kill {window} update diverged: "
                f"{chaos.fingerprint} != {baseline.fingerprint}"
            )
        if chaos.orphans:
            failures.append(
                f"{algorithm}: kill {window} update left orphan processes"
            )
        gates[f"kill_{window}_update"] = {
            "wall_s": wall,
            "bit_identical": identical,
            **_telemetry(chaos),
        }
        print(
            f"  [{algorithm}] kill {window} update window: "
            f"bit-identical={identical}"
        )

    # gate 2: respawn adopted between close and reopen replays the journal
    chaos, wall = _run(
        algorithm,
        [Fault("kill", shard=0, at_command=1)],
        updates=plan,
        restart_delay_s=plan[0].time + 1.0,
    )
    replayed = any(event == "update_replayed" for event, _ in chaos.recovery_log)
    identical = chaos.fingerprint == baseline.fingerprint
    if not replayed:
        failures.append(
            f"{algorithm}: delayed respawn never replayed the missed update"
        )
    if not identical:
        failures.append(f"{algorithm}: journal replay diverged from fault-free run")
    if chaos.orphans:
        failures.append(f"{algorithm}: journal replay left orphan processes")
    gates["journal_replay_on_adoption"] = {
        "wall_s": wall,
        "replayed": replayed,
        "bit_identical": identical,
        **_telemetry(chaos),
    }
    print(
        f"  [{algorithm}] journal replay on adoption: replayed={replayed} "
        f"bit-identical={identical}"
    )

    # gate 3: degraded shard (no restart budget) follows updates
    chaos, wall = _run(
        algorithm,
        [Fault("kill", shard=2, at_command=1)],
        updates=plan,
        max_restarts=0,
    )
    degraded = any(event == "update_degraded" for event, _ in chaos.recovery_log)
    identical = chaos.fingerprint == baseline.fingerprint
    if not degraded:
        failures.append(
            f"{algorithm}: degraded shard never saw an update_degraded event"
        )
    if not identical:
        failures.append(f"{algorithm}: degraded update run diverged")
    gates["degraded_follows_updates"] = {
        "wall_s": wall,
        "degraded": degraded,
        "bit_identical": identical,
        **_telemetry(chaos),
    }
    print(
        f"  [{algorithm}] degraded shard follows updates: "
        f"bit-identical={identical}"
    )

    return {
        "algorithm": algorithm,
        "baseline": {
            "wall_s": baseline_wall,
            "served_rate": round(baseline.result.served_rate, 6),
            "fingerprint": baseline.fingerprint,
            "network_updates": baseline.network_updates,
            "replica_rebuilds": list(baseline.replica_rebuilds),
        },
        "gates": gates,
    }, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI preset: kill gates only (skip seeded-plan and retry gates)",
    )
    parser.add_argument(
        "--disruptions",
        action="store_true",
        help="live network-update gates: kills anchored before/during/after "
        "timed close->reopen windows, journal replay, degraded follow",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_chaos.json",
        help="perf-trajectory JSON file to append to",
    )
    args = parser.parse_args(argv)

    matrix = "disruptions" if args.disruptions else "faults"
    print(
        f"== chaos benchmark ({matrix}): {DEFAULT_SCENARIO.city} "
        f"W{DEFAULT_SCENARIO.num_workers} R{DEFAULT_SCENARIO.num_requests} "
        f"K={DEFAULT_SHARDS} =="
    )
    sweeps, failures = [], []
    if args.disruptions:
        from repro.workloads.scenarios import build_instance

        plan = closure_plan(build_instance(DEFAULT_SCENARIO))
        for algorithm in ALGORITHMS:
            entry, algo_failures = bench_update_windows(algorithm, plan)
            sweeps.append(entry)
            failures.extend(algo_failures)
    else:
        for algorithm in ALGORITHMS:
            entry, algo_failures = bench_algorithm(algorithm, args.smoke)
            sweeps.append(entry)
            failures.extend(algo_failures)

    entry = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "scenario": "chaos-disruptions" if args.disruptions else "chaos",
        "city": DEFAULT_SCENARIO.city,
        "workers": DEFAULT_SCENARIO.num_workers,
        "requests": DEFAULT_SCENARIO.num_requests,
        "shards": DEFAULT_SHARDS,
        "smoke": args.smoke,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "algorithms": sweeps,
        "all_gates_pass": not failures,
    }
    append_trajectory(args.output, entry["scenario"], [entry])

    if failures:
        for message in failures:
            print(f"FAIL: {message}")
        return 1
    print("all chaos gates pass")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
