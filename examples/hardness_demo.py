#!/usr/bin/env python3
"""Empirical demonstration of the hardness results (Section 3.3, Lemmas 1-3).

The paper proves that no online algorithm — deterministic or randomised — has a
constant competitive ratio for URPSM or its special cases, using adversarial
request distributions on a cycle graph. This example *runs* those
constructions: for growing cycle sizes ``|V|`` it draws many instances, runs a
real dispatcher (pruneGreedyDP), and reports the empirical ratio between the
algorithm's expected unified cost and the clairvoyant optimum. The ratio grows
with ``|V|``, exactly as the lemmas predict.

Run with::

    python examples/hardness_demo.py [--sizes 8 16 32 64] [--trials 40]
"""

from __future__ import annotations

import argparse

from repro.core.hardness import estimate_competitive_ratio
from repro.dispatch import DispatcherConfig, PruneGreedyDP
from repro.service import MatchingService

LEMMA_LABELS = {
    1: "Lemma 1: maximise served requests (alpha=0, p_r=1)",
    2: "Lemma 2: maximise revenue (alpha=c_w, p_r=c_r*dis)",
    3: "Lemma 3: minimise distance, serve all (alpha=1, p_r~inf)",
}


def run_dispatcher(instance):
    """Run pruneGreedyDP on one adversarial instance; return (cost, served)."""
    result = MatchingService(
        instance, PruneGreedyDP(DispatcherConfig(grid_cell_metres=50.0))
    ).replay()
    return result.unified_cost, result.served_requests


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="*", default=[8, 16, 32, 64])
    parser.add_argument("--trials", type=int, default=40)
    parser.add_argument("--lemmas", type=int, nargs="*", default=[1, 2, 3])
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI smoke runs")
    args = parser.parse_args()
    if args.smoke:
        args.sizes, args.trials = [8, 16], 6

    for lemma in args.lemmas:
        print(f"\n{LEMMA_LABELS[lemma]}")
        print(f"{'|V|':>6s}  {'E[ALG]':>12s}  {'E[OPT]':>12s}  {'ratio':>10s}  {'unserved':>9s}")
        for size in args.sizes:
            estimate = estimate_competitive_ratio(
                lemma, size, run_dispatcher, trials=args.trials, seed=args.seed
            )
            ratio = estimate.ratio
            ratio_text = f"{ratio:10.2f}" if ratio != float("inf") else "       inf"
            print(f"{size:>6d}  {estimate.mean_algorithm_cost:>12.2f}  "
                  f"{estimate.mean_optimal_cost:>12.2f}  {ratio_text}  "
                  f"{estimate.unserved_fraction:>9.1%}")
        print("-> the ratio keeps growing with |V|: no constant competitive ratio exists.")


if __name__ == "__main__":
    main()
