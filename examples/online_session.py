#!/usr/bin/env python3
"""Online session: drive the MatchingService like a live platform.

The paper's unified insertion framework is an *online* algorithm — and this
example uses it that way, with no batch replay at all. A long-lived
`MatchingService` session receives interleaved platform events over simulated
time:

* **submissions** — requests arrive one at a time and get a typed
  `AssignmentDecision` (accepted with worker + route delta, rejected with a
  reason code, or deferred into a batch window);
* **cancellations** — a rider withdraws a request; the typed outcome says
  whether it was pulled out of a batch window, removed from a planned route,
  or came too late;
* **fleet events** — new workers join mid-session (`add_worker`), others are
  retired (`retire_worker`) and finish their current route without receiving
  new work;
* **time** — `advance_to` moves the platform clock, firing whatever falls
  due (batch flushes, stop completions) and returning freshly resolved
  decisions.

Run with::

    python examples/online_session.py [--city small-grid] [--requests 40]
"""

from __future__ import annotations

import argparse

from repro import MatchingService, PlatformSpec, Worker


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--city", default="small-grid",
                        choices=["small-grid", "chengdu-like", "nyc-like", "random"])
    parser.add_argument("--workers", type=int, default=8)
    parser.add_argument("--requests", type=int, default=40)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI smoke runs")
    args = parser.parse_args()
    if args.smoke:
        args.requests, args.workers = 16, 5

    # batch dispatcher: submissions defer into 30s accumulation windows, so
    # the session shows all three decision states.
    spec = (PlatformSpec.builder()
            .city(args.city, seed=args.seed)
            .workload(num_workers=args.workers, num_requests=args.requests)
            .dispatcher("batch", batch_interval=30.0)
            .build())
    service = MatchingService.from_spec(spec)
    requests = service.instance.requests
    print(f"session open: {args.city}, {args.workers} workers, "
          f"{len(requests)} requests incoming, algorithm={service.dispatcher.name}\n")

    cancelled = requests[len(requests) // 3].id if len(requests) >= 3 else None
    retired_worker = service.instance.workers[0].id
    new_worker_id = max(worker.id for worker in service.instance.workers) + 1

    for index, request in enumerate(requests):
        decision = service.submit(request)
        print(decision.describe())
        for resolved in service.poll_decisions():
            print(resolved.describe())

        if index == len(requests) // 4:
            # the platform scales out: a fresh worker joins mid-session at
            # the city centre (wherever worker 0 started)
            joined = Worker(id=new_worker_id,
                            initial_location=service.instance.workers[0].initial_location,
                            capacity=4)
            service.add_worker(joined)
            print(f"t={service.clock:8.1f}s  ++ worker {joined.id} joined the fleet")
        if index == len(requests) // 2:
            service.retire_worker(retired_worker)
            print(f"t={service.clock:8.1f}s  -- worker {retired_worker} retired "
                  "(finishes its route, gets no new work)")
        if cancelled is not None and request.id == cancelled:
            outcome = service.cancel(cancelled)
            print(f"t={service.clock:8.1f}s  !! cancel request {cancelled}: "
                  f"{outcome.status.value}")

    # let the last batch window flush before closing the session
    final_window = service.advance_to(service.clock + 60.0)
    for resolved in final_window:
        print(resolved.describe())

    snapshot = service.snapshot()
    print(f"\nsnapshot before drain: t={snapshot.clock:.1f}s, "
          f"{snapshot.workers_online}/{snapshot.workers_total} workers online, "
          f"{snapshot.served} served, {snapshot.rejected} rejected, "
          f"{snapshot.cancelled} cancelled, {snapshot.decisions_pending} pending")

    result = service.drain()
    print(f"session closed: served rate {result.served_rate:.1%}, "
          f"unified cost {result.unified_cost:,.0f}, "
          f"{result.cancelled_requests} cancelled")


if __name__ == "__main__":
    main()
