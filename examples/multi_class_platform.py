#!/usr/bin/env python3
"""Multi-class platform: ridesharing, food and parcel delivery on one fleet.

The paper frames URPSM as *unified* route planning: one cost function, one
insertion machinery, any shared-mobility product. This example uses the
declarative scenario layer to run three request classes **concurrently** on
the same platform — riders sharing sedans, meal orders with tight deadlines,
and parcels that can wait — plus a dinner-time demand surge and a street
closure, and reports the served rate and mean wait *per class*.

The whole scenario is a declarative value (``ScenarioProgram``); swap the
dispatcher or the city on the command line without touching the program.

Run with::

    python examples/multi_class_platform.py [--algorithm pruneGreedyDP]
    python examples/multi_class_platform.py --smoke    # CI-sized run
"""

from __future__ import annotations

import argparse

from repro.dispatch.registry import DispatcherSpec
from repro.scenarios import (
    DemandSurge,
    FleetClass,
    NetworkDisruption,
    ScenarioProgram,
    WorkloadClass,
    run_program,
)
from repro.service.spec import PlatformSpec
from repro.workloads.scenarios import ScenarioConfig


def build_program(scale: float) -> ScenarioProgram:
    """The multi-class evening: three products, one surge, one closure."""
    return ScenarioProgram(
        name="multi-class-evening",
        description="ridesharing + food + parcel on a shared fleet, with a "
                    "dinner surge and a street closure",
        fleet=(
            FleetClass(name="sedan", count=max(4, int(24 * scale)), capacity=3),
            FleetClass(name="van", count=max(2, int(6 * scale)), capacity=6),
        ),
        workload=(
            WorkloadClass(name="ridesharing", count=max(20, int(240 * scale))),
            WorkloadClass(
                name="food",
                count=max(10, int(120 * scale)),
                deadline_minutes=9.0,
                penalty_factor=14.0,
                capacity=1,
            ),
            WorkloadClass(
                name="parcel",
                count=max(10, int(90 * scale)),
                deadline_minutes=35.0,
                penalty_factor=5.0,
                capacity=1,
            ),
        ),
        surges=(
            DemandSurge(
                name="dinner-rush",
                start_hours=1.0,
                duration_minutes=25.0,
                count=max(8, int(60 * scale)),
                deadline_minutes=9.0,
                capacity=1,
            ),
        ),
        disruptions=(
            NetworkDisruption(
                name="bridge-works",
                start_hours=0.75,
                duration_minutes=45.0,
                edge_count=2,
            ),
        ),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--algorithm", default="pruneGreedyDP",
                        help="dispatcher to serve the platform with")
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (small city, ~70 requests)")
    args = parser.parse_args(argv)

    scale = 0.15 if args.smoke else 1.0
    config = ScenarioConfig(
        city="small-grid" if args.smoke else "chengdu-like",
        num_workers=1,       # replaced by the fleet classes below
        num_requests=1,      # replaced by the workload classes below
        horizon_hours=1.0 if args.smoke else 2.0,
        seed=args.seed,
    )
    program = build_program(scale)
    spec = PlatformSpec(
        scenario=config, dispatcher=DispatcherSpec.parse(args.algorithm)
    )

    fleet_total = sum(cls.count for cls in program.fleet)
    workload_total = sum(cls.count for cls in program.workload)
    surge_total = sum(surge.count for surge in program.surges)
    print(f"== {program.name} on {config.city} with {args.algorithm} ==")
    print(f"fleet: {fleet_total} workers in {len(program.fleet)} classes; "
          f"workload: {workload_total} + {surge_total} surge requests; "
          f"{len(program.disruptions)} street closure(s)\n")

    outcome = run_program(spec, program)
    result = outcome.result

    print(f"{'class':>18s}  {'requests':>8s}  {'served':>6s}  "
          f"{'rate':>6s}  {'mean wait':>9s}")
    for label in sorted(outcome.class_stats):
        stats = outcome.class_stats[label]
        print(f"{label:>18s}  {int(stats['requests']):8d}  "
              f"{int(stats['served']):6d}  {stats['served_rate']:6.2f}  "
              f"{stats['mean_wait_seconds']:8.1f}s")

    print(f"\noverall: {result.served_requests}/{result.total_requests} served "
          f"({result.served_rate:.2%}), unified cost {result.unified_cost:.1f}, "
          f"mean detour ratio {result.mean_detour_ratio:.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
