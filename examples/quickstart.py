#!/usr/bin/env python3
"""Quickstart: declare a platform, serve requests online, inspect the results.

This walks through the three layers of the library:

1. the **insertion operator** on a single route (the paper's core algorithmic
   contribution, Section 4);
2. the **online matching service** — a `MatchingService` session built from
   one declarative `PlatformSpec`, answering each request with a typed
   `AssignmentDecision` the moment it is submitted (Section 5);
3. the **full replay** — streaming a whole day of dynamic requests through
   the same session and reporting the paper's metrics: unified cost, served
   rate, response time (Section 6).

Run with::

    python examples/quickstart.py [--city small-grid] [--requests 150] [--workers 20]
"""

from __future__ import annotations

import argparse

from repro import (
    LinearDPInsertion,
    MatchingService,
    PlatformSpec,
    empty_route,
)


def demo_insertion(instance) -> None:
    """Insert the first request into an empty route and print the outcome."""
    oracle = instance.oracle
    worker = instance.workers[0]
    request = instance.requests[0]
    route = empty_route(worker, start_time=request.release_time)
    route.refresh(oracle)

    operator = LinearDPInsertion()
    result = operator.best_insertion(route, request, oracle)
    print("--- linear DP insertion on a single route ---")
    print(f"worker {worker.id} at vertex {worker.initial_location}, capacity {worker.capacity}")
    print(f"request {request.id}: {request.origin} -> {request.destination}, "
          f"deadline +{request.deadline - request.release_time:.0f}s")
    if result.feasible:
        print(f"best insertion: pickup at position {result.pickup_index}, "
              f"drop-off at position {result.dropoff_index}, "
              f"increased travel time {result.delta:.1f}s "
              f"({result.distance_queries} exact distance queries)")
    else:
        print("no feasible insertion for this worker")
    print()


def demo_online_decisions(service: MatchingService, count: int) -> None:
    """Submit the first few requests one by one and print each decision."""
    print(f"--- online session: first {count} decisions ---")
    for request in service.instance.requests[:count]:
        decision = service.submit(request)
        print(decision.describe())
    snapshot = service.snapshot()
    print(f"snapshot @ t={snapshot.clock:.0f}s: {snapshot.served} served, "
          f"{snapshot.rejected} rejected, {snapshot.workers_idle} idle workers\n")


def demo_replay(service: MatchingService, already_submitted: int) -> None:
    """Stream the rest of the request stream and report the final metrics."""
    result = service.replay(service.instance.requests[already_submitted:])
    print("--- full dynamic replay (pruneGreedyDP) ---")
    print(f"instance           : {result.instance_name}")
    print(f"requests           : {result.total_requests}")
    print(f"served rate        : {result.served_rate:.1%}")
    print(f"unified cost       : {result.unified_cost:,.0f}")
    print(f"  travel cost      : {result.total_travel_cost:,.0f} s")
    print(f"  penalties        : {result.total_penalty:,.0f}")
    print(f"response time      : {result.response_time_seconds * 1000:.2f} ms/request")
    print(f"distance queries   : {result.distance_queries:,}")
    print(f"mean pickup wait   : {result.mean_wait_seconds:.0f} s")
    print(f"mean detour ratio  : {result.mean_detour_ratio:.2f}x")
    print(f"deadline violations: {result.deadline_violations}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--city", default="small-grid",
                        choices=["small-grid", "chengdu-like", "nyc-like", "random"])
    parser.add_argument("--requests", type=int, default=150)
    parser.add_argument("--workers", type=int, default=20)
    parser.add_argument("--deadline-minutes", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI smoke runs")
    args = parser.parse_args()
    if args.smoke:
        args.requests, args.workers = 30, 8

    spec = (PlatformSpec.builder()
            .city(args.city, seed=args.seed)
            .workload(num_workers=args.workers, num_requests=args.requests,
                      deadline_minutes=args.deadline_minutes)
            .dispatcher("pruneGreedyDP")
            .build())
    print(f"building platform for {args.city} "
          f"({args.workers} workers, {args.requests} requests)...\n")
    service = MatchingService.from_spec(spec)

    demo_insertion(service.instance)
    preview = min(5, args.requests)
    demo_online_decisions(service, preview)
    demo_replay(service, preview)


if __name__ == "__main__":
    main()
