#!/usr/bin/env python3
"""Quickstart: build a synthetic city, run pruneGreedyDP, inspect the results.

This walks through the three layers of the library:

1. the **insertion operator** on a single route (the paper's core algorithmic
   contribution, Section 4);
2. the **dispatcher** answering one request for a whole fleet (Section 5);
3. the **simulator** replaying a full day of dynamic requests and reporting
   the paper's metrics: unified cost, served rate, response time (Section 6).

Run with::

    python examples/quickstart.py [--city small-grid] [--requests 150] [--workers 20]
"""

from __future__ import annotations

import argparse

from repro import (
    DispatcherConfig,
    LinearDPInsertion,
    PruneGreedyDP,
    ScenarioConfig,
    build_instance,
    empty_route,
    run_simulation,
)


def demo_insertion(instance) -> None:
    """Insert the first request into an empty route and print the outcome."""
    oracle = instance.oracle
    worker = instance.workers[0]
    request = instance.requests[0]
    route = empty_route(worker, start_time=request.release_time)
    route.refresh(oracle)

    operator = LinearDPInsertion()
    result = operator.best_insertion(route, request, oracle)
    print("--- linear DP insertion on a single route ---")
    print(f"worker {worker.id} at vertex {worker.initial_location}, capacity {worker.capacity}")
    print(f"request {request.id}: {request.origin} -> {request.destination}, "
          f"deadline +{request.deadline - request.release_time:.0f}s")
    if result.feasible:
        print(f"best insertion: pickup at position {result.pickup_index}, "
              f"drop-off at position {result.dropoff_index}, "
              f"increased travel time {result.delta:.1f}s "
              f"({result.distance_queries} exact distance queries)")
    else:
        print("no feasible insertion for this worker")
    print()


def demo_simulation(instance, grid_cell_metres: float) -> None:
    """Replay the whole request stream with pruneGreedyDP."""
    dispatcher = PruneGreedyDP(DispatcherConfig(grid_cell_metres=grid_cell_metres))
    result = run_simulation(instance, dispatcher)
    print("--- full dynamic simulation (pruneGreedyDP) ---")
    print(f"instance           : {result.instance_name}")
    print(f"requests           : {result.total_requests}")
    print(f"served rate        : {result.served_rate:.1%}")
    print(f"unified cost       : {result.unified_cost:,.0f}")
    print(f"  travel cost      : {result.total_travel_cost:,.0f} s")
    print(f"  penalties        : {result.total_penalty:,.0f}")
    print(f"response time      : {result.response_time_seconds * 1000:.2f} ms/request")
    print(f"distance queries   : {result.distance_queries:,}")
    print(f"mean pickup wait   : {result.mean_wait_seconds:.0f} s")
    print(f"mean detour ratio  : {result.mean_detour_ratio:.2f}x")
    print(f"deadline violations: {result.deadline_violations}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--city", default="small-grid",
                        choices=["small-grid", "chengdu-like", "nyc-like", "random"])
    parser.add_argument("--requests", type=int, default=150)
    parser.add_argument("--workers", type=int, default=20)
    parser.add_argument("--deadline-minutes", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=2018)
    args = parser.parse_args()

    config = ScenarioConfig(
        city=args.city,
        num_workers=args.workers,
        num_requests=args.requests,
        deadline_minutes=args.deadline_minutes,
        seed=args.seed,
    )
    print(f"building instance for {args.city} "
          f"({args.workers} workers, {args.requests} requests)...\n")
    instance = build_instance(config)

    demo_insertion(instance)
    demo_simulation(instance, grid_cell_metres=config.grid_km * 1000.0)


if __name__ == "__main__":
    main()
