#!/usr/bin/env python3
"""Food-delivery scenario: couriers, tight deadlines, revenue objective.

Shared mobility is broader than ride-sharing: the paper's introduction names
food delivery as a second target application. This example models it with the
same URPSM machinery:

* **workers** are couriers with a small box capacity (they can carry a few
  meals at once);
* **requests** are meal orders with *tight* delivery deadlines (cold food is a
  lost customer) and fares proportional to the trip length;
* the platform maximises **revenue**: ``alpha = c_w`` (courier cost per
  second) and ``p_r = c_r * dis(o_r, d_r)`` (lost fare when an order is
  rejected), which Section 3.2 shows is a special case of the unified cost.

The example compares pruneGreedyDP against the batch baseline and reports how
the deadline tightness changes the picture.

Run with::

    python examples/food_delivery.py [--couriers 25] [--orders 200]
"""

from __future__ import annotations

import argparse

from repro.core.instance import URPSMInstance
from repro.core.objective import max_revenue_objective, platform_revenue
from repro.dispatch import Batch, DispatcherConfig, PruneGreedyDP
from repro.service import MatchingService
from repro.workloads.requests import RequestGeneratorConfig, generate_requests
from repro.workloads.scenarios import ScenarioConfig, build_network, make_oracle
from repro.workloads.workers import WorkerGeneratorConfig, generate_workers

COURIER_COST_PER_SECOND = 1.0
FARE_PER_SECOND = 6.0


def build_food_delivery_instance(
    couriers: int, orders: int, deadline_minutes: float, seed: int
) -> URPSMInstance:
    """A ring-radial city (restaurants cluster in the centre) with meal orders."""
    scenario = ScenarioConfig(city="chengdu-like", seed=seed)
    network = build_network(scenario)
    oracle = make_oracle(network, scenario)
    objective = max_revenue_objective(COURIER_COST_PER_SECOND, FARE_PER_SECOND)

    workers = generate_workers(
        network,
        WorkerGeneratorConfig(count=couriers, nominal_capacity=3, hotspot_share=0.7, seed=seed + 1),
    )
    requests = generate_requests(
        network,
        oracle,
        objective,
        RequestGeneratorConfig(
            count=orders,
            horizon_seconds=3 * 3600.0,
            deadline_seconds=deadline_minutes * 60.0,
            num_hotspots=3,          # a few restaurant districts
            uniform_share=0.15,
            seed=seed + 2,
        ),
    )
    return URPSMInstance(
        network=network,
        oracle=oracle,
        workers=workers,
        requests=requests,
        objective=objective,
        name=f"food-delivery-{couriers}c-{orders}o",
    )


def run_and_report(instance: URPSMInstance, deadline_minutes: float) -> None:
    oracle = instance.oracle
    direct = {
        request.id: oracle.distance(request.origin, request.destination)
        for request in instance.requests
    }
    total_potential_fare = FARE_PER_SECOND * sum(direct.values())

    print(f"\n=== delivery deadline: {deadline_minutes:.0f} minutes ===")
    for dispatcher in (
        PruneGreedyDP(DispatcherConfig(grid_cell_metres=1500.0)),
        Batch(DispatcherConfig(grid_cell_metres=1500.0, batch_interval=30.0)),
    ):
        result = MatchingService(instance, dispatcher).replay()
        revenue = total_potential_fare - result.unified_cost  # Eq. (4)
        served_fares = [direct[r] for r in direct] if result.rejected_requests == 0 else None
        print(f"{result.algorithm:>14s}: served {result.served_rate:6.1%}  "
              f"revenue {revenue:12,.0f}  unified cost {result.unified_cost:12,.0f}  "
              f"response {result.response_time_seconds * 1000:6.2f} ms")
        if served_fares is not None:
            check = platform_revenue(result.total_travel_cost, served_fares,
                                     COURIER_COST_PER_SECOND, FARE_PER_SECOND)
            assert abs(check - revenue) < 1e-6 * max(1.0, abs(revenue))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--couriers", type=int, default=25)
    parser.add_argument("--orders", type=int, default=200)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI smoke runs")
    args = parser.parse_args()
    if args.smoke:
        args.couriers, args.orders = 8, 40

    print(f"food delivery: {args.couriers} couriers, {args.orders} orders, revenue objective "
          f"(c_w={COURIER_COST_PER_SECOND}/s, c_r={FARE_PER_SECOND}/s)")
    for deadline_minutes in (20.0,) if args.smoke else (20.0, 35.0):
        instance = build_food_delivery_instance(
            args.couriers, args.orders, deadline_minutes, args.seed
        )
        run_and_report(instance, deadline_minutes)


if __name__ == "__main__":
    main()
