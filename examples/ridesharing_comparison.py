#!/usr/bin/env python3
"""Ride-sharing algorithm comparison: the paper's evaluation in miniature.

Runs every algorithm of Section 6 (pruneGreedyDP, GreedyDP, tshare, kinetic,
batch) on the same synthetic city and request stream, then prints the
comparison table with the paper's metrics. This is the workload the paper's
introduction motivates: a ride-sharing platform assigning dynamically arriving
passenger requests to a shared fleet.

Run with::

    python examples/ridesharing_comparison.py [--city chengdu-like] [--scale tiny|small]
"""

from __future__ import annotations

import argparse

from repro.experiments.config import ExperimentConfig, PAPER_ALGORITHMS
from repro.experiments.reporting import format_results
from repro.experiments.runner import ScenarioRunner


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--city", default="chengdu-like",
                        choices=["chengdu-like", "nyc-like", "small-grid", "random"])
    parser.add_argument("--scale", default="tiny", choices=["tiny", "small", "medium"])
    parser.add_argument("--algorithms", nargs="*", default=PAPER_ALGORITHMS)
    parser.add_argument("--seed", type=int, default=2018)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI smoke runs")
    args = parser.parse_args()
    if args.smoke:
        args.city, args.scale = "small-grid", "tiny"
        args.algorithms = ["pruneGreedyDP", "nearest"]

    experiment = ExperimentConfig(
        cities=(args.city,), algorithms=tuple(args.algorithms), scale=args.scale, seed=args.seed
    )
    scenario = experiment.base_scenario(args.city)
    print(f"city={args.city}  workers={scenario.num_workers}  requests={scenario.num_requests}  "
          f"deadline={scenario.deadline_minutes}min  penalty={scenario.penalty_factor}x  "
          f"grid={scenario.grid_km}km\n")

    runner = ScenarioRunner()
    results = runner.compare(scenario, list(args.algorithms))
    print(format_results(results))

    best = min(results, key=lambda result: result.unified_cost)
    print(f"\nlowest unified cost: {best.algorithm} "
          f"({best.unified_cost:,.0f}, served rate {best.served_rate:.1%})")


if __name__ == "__main__":
    main()
