#!/usr/bin/env python3
"""Crowdsourced parcel delivery: high-capacity vans, serve-everything objective.

The third shared-mobility application the paper names is crowdsourced parcel
delivery. Compared to ride-sharing it stresses a different corner of the
URPSM parameter space:

* **workers** are vans with a large capacity (Table 5 sweeps ``K_w`` up to 20
  precisely because of such fleets);
* **requests** are parcels with long delivery windows (hours, not minutes);
* the platform must deliver everything it accepts, so the objective is the
  *minimise total distance while serving all requests* special case
  (``alpha = 1``, ``p_r = inf``) — rejected parcels only happen when they are
  physically impossible to deliver in time.

The example shows how worker capacity changes the total travelled time (the
consolidation effect), comparing pruneGreedyDP with the kinetic baseline that
the paper finds struggles at high capacities.

Run with::

    python examples/parcel_delivery.py [--vans 12] [--parcels 150]
"""

from __future__ import annotations

import argparse

from repro.core.instance import URPSMInstance
from repro.core.objective import min_total_distance_objective
from repro.dispatch import DispatcherConfig, Kinetic, PruneGreedyDP
from repro.service import MatchingService
from repro.workloads.requests import RequestGeneratorConfig, generate_requests
from repro.workloads.scenarios import ScenarioConfig, build_network, make_oracle
from repro.workloads.workers import WorkerGeneratorConfig, generate_workers


def build_parcel_instance(vans: int, parcels: int, van_capacity: int, seed: int) -> URPSMInstance:
    scenario = ScenarioConfig(city="nyc-like", seed=seed)
    network = build_network(scenario)
    oracle = make_oracle(network, scenario)
    objective = min_total_distance_objective()

    workers = generate_workers(
        network,
        WorkerGeneratorConfig(count=vans, nominal_capacity=van_capacity, hotspot_share=0.3,
                              seed=seed + 1),
    )
    requests = generate_requests(
        network,
        oracle,
        objective,
        RequestGeneratorConfig(
            count=parcels,
            horizon_seconds=4 * 3600.0,
            deadline_seconds=2.5 * 3600.0,   # parcels tolerate long windows
            num_hotspots=6,
            uniform_share=0.4,
            seed=seed + 2,
        ),
    )
    return URPSMInstance(
        network=network,
        oracle=oracle,
        workers=workers,
        requests=requests,
        objective=objective,
        name=f"parcel-delivery-K{van_capacity}",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vans", type=int, default=12)
    parser.add_argument("--parcels", type=int, default=150)
    parser.add_argument("--capacities", type=int, nargs="*", default=[4, 10, 20])
    parser.add_argument("--include-kinetic", action="store_true",
                        help="also run the kinetic baseline (slow at high capacity)")
    parser.add_argument("--seed", type=int, default=21)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI smoke runs")
    args = parser.parse_args()
    if args.smoke:
        args.vans, args.parcels, args.capacities = 5, 30, [4]

    print(f"parcel delivery on nyc-like: {args.vans} vans, {args.parcels} parcels, "
          f"objective = minimise total distance (serve everything)\n")
    header = f"{'K_w':>4s}  {'algorithm':>14s}  {'served':>7s}  {'travel time (h)':>16s}  {'resp (ms)':>9s}"
    print(header)
    print("-" * len(header))

    for capacity in args.capacities:
        instance = build_parcel_instance(args.vans, args.parcels, capacity, args.seed)
        dispatchers = [PruneGreedyDP(DispatcherConfig(grid_cell_metres=2000.0))]
        if args.include_kinetic:
            dispatchers.append(
                Kinetic(DispatcherConfig(grid_cell_metres=2000.0), node_budget=50_000)
            )
        for dispatcher in dispatchers:
            result = MatchingService(instance, dispatcher).replay()
            print(f"{capacity:>4d}  {result.algorithm:>14s}  {result.served_rate:>7.1%}  "
                  f"{result.total_travel_cost / 3600.0:>16.1f}  "
                  f"{result.response_time_seconds * 1000:>9.2f}")
    print("\nLarger van capacities consolidate parcels into fewer, longer tours, "
          "reducing the total travelled time per parcel.")


if __name__ == "__main__":
    main()
